"""Seeded violations: handlers constructing unregistered error codes."""

from .protocol import ERROR_BAD, ErrorReply

LOCAL_CODE = "handler-overloaded"


class SchedulerError(Exception):
    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def reject(request_id: int) -> ErrorReply:
    # Literal code never added to ERROR_TAXONOMY.
    return ErrorReply(code="not-registered", message=f"no {request_id}")


def overloaded(request_id: int) -> ErrorReply:
    # Module-level constant resolving to an unregistered code.
    return ErrorReply(LOCAL_CODE, f"busy {request_id}")


def schedule() -> None:
    raise SchedulerError("also-missing", "queue gone")


def clean(request_id: int) -> ErrorReply:
    # Registered constant imported from the protocol module: no finding.
    return ErrorReply(code=ERROR_BAD, message=f"bad {request_id}")


def passthrough(exc: SchedulerError) -> ErrorReply:
    # Dynamic passthrough: statically unresolvable, so no finding.
    return ErrorReply(code=exc.code, message=str(exc))
