"""Clean twin of poolpayload_bad.py: module-level callables everywhere.

Also proves the pass stays quiet on thread pools (no pickling) and on
module-level workers routed through a pool-owning class's dispatch method.
"""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


def scale(x):
    return x * 3


def run_direct(items):
    pool = ProcessPoolExecutor(max_workers=2)
    return list(pool.map(scale, items))


def run_threads(items):
    # ThreadPoolExecutor never pickles: lambdas are fine here.
    pool = ThreadPoolExecutor(max_workers=2)
    return list(pool.map(lambda x: x + 1, items))


class Dispatcher:
    def __init__(self):
        self._executor = ProcessPoolExecutor(max_workers=2)

    def _ensure(self):
        return self._executor

    def launch(self, fn, items):
        return list(self._ensure().map(fn, items))


def run_wrapped(dispatcher: Dispatcher, items):
    return dispatcher.launch(scale, items)
