"""Seeded kernel-parity contracts (see tests/test_analysis.py).

``covered_join`` and ``CoveredTable`` are exercised with explicit toggles by
``parity_tests/checks_kernels.py``; ``uncovered_join`` (SEED) and
``UncoveredTable`` (SEED) are not — the checker must flag exactly those two,
and ``implicit_join`` too: the fixture test calls it but relies on the
toggle default instead of pinning it.
"""


def covered_join(keys, use_bulk: bool = True):
    return keys if use_bulk else list(keys)


def uncovered_join(keys, fused: bool = True):  # SEED: no parity test
    return keys if fused else list(keys)


def implicit_join(keys, vectorized: bool = True):  # SEED: toggle never passed
    return keys if vectorized else list(keys)


def _private_join(keys, use_batch: bool = True):
    # Private helpers are exempt: their caller's parity test covers them.
    return keys


class CoveredTable:
    def __init__(self, use_kernels: bool = True):
        self.use_kernels = use_kernels


class UncoveredTable:
    def __init__(self, use_batch: bool = True):  # SEED: no parity test
        self.use_batch = use_batch
