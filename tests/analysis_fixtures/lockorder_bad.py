"""Seeded lock-order violations (see tests/test_analysis.py).

Expected findings:

  * a two-lock cycle: ``transfer`` takes ``fixture-a`` then ``fixture-b``
    (nested ``with``), while ``audit`` holds ``fixture-b`` and calls
    ``grab_a`` whose body takes ``fixture-a`` — the interprocedural edge
    closes the cycle;
  * a self-deadlock: ``recount`` re-enters the non-reentrant
    ``fixture-self`` lock.
"""

from repro.locking import make_lock

LOCK_A = make_lock("fixture-a")
LOCK_B = make_lock("fixture-b")
LOCK_SELF = make_lock("fixture-self")


def transfer():
    with LOCK_A:
        with LOCK_B:  # SEED: records fixture-a -> fixture-b
            pass


def grab_a():
    with LOCK_A:
        pass


def audit():
    with LOCK_B:
        grab_a()  # SEED: interprocedural fixture-b -> fixture-a


def recount():
    with LOCK_SELF:
        with LOCK_SELF:  # SEED: non-reentrant re-acquisition
            pass
