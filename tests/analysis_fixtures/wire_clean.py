"""Clean twin of wire_bad.py: full-precision wire serialisation."""


def response_to_wire(response):
    return {
        "total_s": float(response.total_s),
        "ratios": [float(r) for r in response.ratios],
        "delta": float(response.delta),
        "id": str(response.request_id),  # str() of a non-float field: fine
    }


def stats_to_wire(stats):
    return {"hit_rate": float(stats.hit_rate)}


def envelope(payload):
    return {"queued_s": float(payload.queued_s)}


def display_summary(response):
    return f"total={round(response.total_s, 2)}"
