"""Fixture 'test suite' scanned by the kernel-parity checker.

Not named ``test_*.py`` on purpose: pytest must not collect it — it only
exists as AST input for the checker's coverage scan.
"""

from parity_src.kernels import CoveredTable, covered_join, implicit_join


def check_covered_join_parity():
    fast = covered_join([1, 2], use_bulk=True)
    slow = covered_join([1, 2], use_bulk=False)
    assert fast == slow


def check_covered_table_parity():
    assert CoveredTable(use_kernels=False).use_kernels is False
    assert CoveredTable(use_kernels=True).use_kernels is True


def check_implicit_join_runs():
    # Calls the function but never pins `vectorized=` — must NOT count as
    # parity coverage.
    assert implicit_join([1, 2]) == [1, 2]
