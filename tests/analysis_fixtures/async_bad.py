"""Seeded async-blocking violations.

Expected findings, all inside ``async def``:
  * ``tick`` calls ``time.sleep``.
  * ``fetch`` calls ``subprocess.run``.
  * ``load`` calls ``open``.
"""

import subprocess
import time


async def tick():
    time.sleep(0.1)  # SEED: blocking sleep on the event loop


async def fetch():
    return subprocess.run(["true"])  # SEED: blocking subprocess


async def load(path):
    with open(path) as handle:  # SEED: sync file IO
        return handle.read()
