"""Clean twin: every advertised code is classified with a literal bool."""

ERROR_BAD = "bad-request"
ERROR_LOST = "peer-lost"

ERROR_CODES = (
    ERROR_BAD,
    ERROR_LOST,
)

ERROR_TAXONOMY: dict[str, bool] = {
    ERROR_BAD: False,
    ERROR_LOST: True,
}


class ErrorReply:
    def __init__(self, code: str, message: str) -> None:
        self.code = code
        self.message = message
