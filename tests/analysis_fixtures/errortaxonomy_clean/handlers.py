"""Clean twin: every statically resolvable code is registered."""

from .protocol import ERROR_BAD, ERROR_LOST, ErrorReply


class SchedulerError(Exception):
    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def reject(request_id: int) -> ErrorReply:
    return ErrorReply(code=ERROR_BAD, message=f"no {request_id}")


def lost(request_id: int) -> ErrorReply:
    return ErrorReply(ERROR_LOST, f"gone {request_id}")


def schedule() -> None:
    raise SchedulerError(ERROR_LOST, "queue gone")


def passthrough(exc: SchedulerError) -> ErrorReply:
    return ErrorReply(code=exc.code, message=str(exc))
