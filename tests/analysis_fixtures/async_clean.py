"""Clean twin of async_bad.py: async-safe equivalents, plus the sync
contexts in which the same calls are fine."""

import asyncio
import subprocess
import time


async def tick():
    await asyncio.sleep(0.1)


async def fetch():
    proc = await asyncio.create_subprocess_exec("true")
    await proc.wait()
    return proc


async def load(path, loop):
    def read_sync():
        # A nested *sync* def resets the context: it may run in an
        # executor, so blocking IO here must not be flagged.
        with open(path) as handle:
            return handle.read()

    return await loop.run_in_executor(None, read_sync)


def warm_up():
    # Plain sync function: blocking calls are fine here.
    time.sleep(0.01)
    subprocess.run(["true"])
    with open(__file__) as handle:
        return handle.readline()
