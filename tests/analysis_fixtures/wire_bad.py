"""Seeded wire-precision violations.

Expected findings, all inside wire-scope functions:
  * ``response_to_wire`` rounds a float.
  * ``response_to_wire`` stringifies a float field.
  * ``stats_to_wire`` %-formats a float.
  * ``envelope`` uses an f-string precision spec.
"""


def response_to_wire(response):
    return {
        "total_s": round(response.total_s, 6),  # SEED: round on the wire
        "ratios": [str(r) for r in response.ratios],
        "delta": str(response.delta),  # SEED: str() of a float field
    }


def stats_to_wire(stats):
    return {"hit_rate": "%.4f" % stats.hit_rate}  # SEED: %-float formatting


def envelope(payload):
    return f"{payload.queued_s:.3f}"  # SEED: f-string precision spec


def display_summary(response):
    # NOT wire scope: rounding for display must not be flagged.
    return f"total={round(response.total_s, 2)}"
