"""Tests for the machine model, memory spaces and work-stats containers."""

from __future__ import annotations

import pytest

from repro.hardware import (
    CPU,
    GPU,
    MemorySpace,
    MemorySystem,
    OutOfMemoryError,
    TimeBreakdown,
    WorkProfile,
    WorkStats,
    WorkingSet,
    ZeroCopyBuffer,
    coupled_machine,
    discrete_machine,
)


class TestWorkStats:
    def test_addition_sums_extensive_quantities(self):
        a = WorkStats(tuples=10, instructions=100.0, random_accesses=5.0, divergence=0.2)
        b = WorkStats(tuples=30, instructions=300.0, random_accesses=15.0, divergence=0.6)
        total = a + b
        assert total.tuples == 40
        assert total.instructions == 400.0
        assert total.random_accesses == 20.0
        # Divergence is averaged weighted by tuples.
        assert total.divergence == pytest.approx((0.2 * 10 + 0.6 * 30) / 40)

    def test_scaled(self):
        stats = WorkStats(tuples=10, instructions=100.0, global_atomics=10.0, divergence=0.5)
        half = stats.scaled(0.5)
        assert half.tuples == 5
        assert half.instructions == 50.0
        assert half.divergence == 0.5

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            WorkStats(tuples=1).scaled(-1.0)

    def test_profile_round_trip(self):
        profile = WorkProfile(
            instructions_per_tuple=10.0, random_accesses_per_tuple=2.0, divergence=0.3
        )
        stats = profile.stats_for(100)
        back = WorkProfile.from_stats(stats)
        assert back.instructions_per_tuple == pytest.approx(10.0)
        assert back.random_accesses_per_tuple == pytest.approx(2.0)

    def test_is_empty(self):
        assert WorkStats().is_empty()
        assert not WorkStats(tuples=1, instructions=1.0).is_empty()


class TestTimeBreakdown:
    def test_total_sums_components(self):
        t = TimeBreakdown(compute_s=1.0, memory_s=2.0, atomic_s=0.5, divergence_s=0.25,
                          pipeline_delay_s=0.25, transfer_s=1.0)
        assert t.total_s == pytest.approx(5.0)

    def test_addition(self):
        a = TimeBreakdown(compute_s=1.0)
        b = TimeBreakdown(memory_s=2.0)
        assert (a + b).total_s == pytest.approx(3.0)

    def test_as_dict_has_total(self):
        assert TimeBreakdown(compute_s=1.0).as_dict()["total_s"] == 1.0


class TestMemorySpaces:
    def test_allocate_and_release(self):
        space = MemorySpace("test", capacity_bytes=1000)
        allocation = space.allocate("a", 400)
        assert allocation.offset == 0
        assert space.used_bytes == 400
        space.release("a")
        assert space.used_bytes == 0

    def test_out_of_memory(self):
        space = MemorySpace("test", capacity_bytes=100)
        space.allocate("a", 80)
        with pytest.raises(OutOfMemoryError):
            space.allocate("b", 40)

    def test_duplicate_label_rejected(self):
        space = MemorySpace("test", capacity_bytes=100)
        space.allocate("a", 10)
        with pytest.raises(ValueError):
            space.allocate("a", 10)

    def test_release_unknown_label(self):
        with pytest.raises(KeyError):
            MemorySpace("test", capacity_bytes=10).release("missing")

    def test_zero_copy_can_hold_join(self):
        buffer = ZeroCopyBuffer(capacity_bytes=1000)
        assert buffer.can_hold_join(200, 200, overhead_factor=2.0)
        assert not buffer.can_hold_join(400, 400, overhead_factor=2.0)

    def test_memory_system_copy_time(self):
        system = MemorySystem(
            zero_copy=ZeroCopyBuffer(1000),
            system_memory=MemorySpace("sys", 10_000),
            copy_bandwidth_bytes_per_s=1000.0,
        )
        assert system.copy_time(500) == pytest.approx(0.5)
        assert system.copied_bytes == 500
        system.reset()
        assert system.copied_bytes == 0


class TestMachine:
    def test_coupled_has_no_bus(self, coupled):
        assert coupled.is_coupled
        assert coupled.transfer_seconds(1 << 20, "h2d") == 0.0

    def test_discrete_charges_transfers(self, discrete):
        assert not discrete.is_coupled
        assert discrete.transfer_seconds(1 << 20, "h2d") > 0.0
        assert discrete.bus is not None and discrete.bus.total_bytes == 1 << 20

    def test_device_model_lookup(self, coupled):
        assert coupled.device_model(CPU).spec.kind == "cpu"
        assert coupled.device_model(GPU).spec.kind == "gpu"
        with pytest.raises(ValueError):
            coupled.device_model("npu")

    def test_memory_environment_uses_cache_model(self, coupled):
        small = coupled.memory_environment(WorkingSet(bytes=1024.0))
        huge = coupled.memory_environment(WorkingSet(bytes=1e9))
        assert small.miss_ratio < huge.miss_ratio
        assert coupled.memory_environment(None).miss_ratio == 1.0

    def test_step_time_records_cache_accesses(self, coupled):
        stats = WorkStats(tuples=10, random_accesses=100.0)
        coupled.step_time(CPU, stats, WorkingSet(bytes=1e9))
        assert coupled.cache.stats.accesses == 100

    def test_reset_counters(self, discrete):
        discrete.transfer_seconds(1024, "h2d")
        discrete.step_time(CPU, WorkStats(tuples=1, random_accesses=10.0), WorkingSet(bytes=1e9))
        discrete.reset_counters()
        assert discrete.bus.total_bytes == 0
        assert discrete.cache.stats.accesses == 0

    def test_shared_cache_flag_differs(self):
        assert coupled_machine().spec.shared_cache is True
        assert discrete_machine().spec.shared_cache is False
