"""Unit and integration tests for the SHJ / PHJ operators and their steps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import JoinWorkload, Relation
from repro.hashjoin import (
    BUILD_STEPS,
    CoarseGrainedPHJ,
    HashJoinConfig,
    PROBE_STEPS,
    PartitionConfig,
    PartitionedHashJoin,
    SimpleHashJoin,
    final_partition_ids,
    plan_partitioning,
    reference_join,
    vectorized_reference_join,
)


class TestReferenceJoins:
    def test_reference_implementations_agree(self, small_workload):
        plain = reference_join(
            small_workload.build.slice(0, 300), small_workload.probe.slice(0, 300)
        )
        fast = vectorized_reference_join(
            small_workload.build.slice(0, 300), small_workload.probe.slice(0, 300)
        )
        assert plain.equals(fast)

    def test_reference_join_counts_duplicates(self):
        build = Relation(keys=np.array([1, 1, 2]), rids=np.array([0, 1, 2]))
        probe = Relation(keys=np.array([1, 2, 3]), rids=np.array([10, 11, 12]))
        result = reference_join(build, probe)
        assert result.match_count == 3
        assert (1, 11) not in result.as_pair_set()


class TestSimpleHashJoin:
    def test_matches_reference(self, small_workload):
        run = SimpleHashJoin().run(small_workload.build, small_workload.probe)
        reference = vectorized_reference_join(small_workload.build, small_workload.probe)
        assert run.result.equals(reference)

    def test_expected_match_count(self, small_workload):
        run = SimpleHashJoin().run(small_workload.build, small_workload.probe)
        assert run.result.match_count == small_workload.expected_matches()

    def test_step_series_structure(self, small_workload):
        run = SimpleHashJoin().run(small_workload.build, small_workload.probe)
        assert run.build.series.step_names == [s.name for s in BUILD_STEPS]
        assert run.probe.series.step_names == [s.name for s in PROBE_STEPS]
        assert run.build.series.n_tuples == small_workload.build_tuples
        assert run.probe.series.n_tuples == small_workload.probe_tuples

    def test_table_is_consistent(self, small_workload):
        run = SimpleHashJoin().run(small_workload.build, small_workload.probe)
        run.table.validate()
        assert run.table.n_rid_nodes == small_workload.build_tuples

    def test_skewed_workload_correct(self, skewed_workload):
        run = SimpleHashJoin().run(skewed_workload.build, skewed_workload.probe)
        reference = vectorized_reference_join(skewed_workload.build, skewed_workload.probe)
        assert run.result.equals(reference)

    def test_selective_workload_correct(self, selective_workload):
        run = SimpleHashJoin().run(selective_workload.build, selective_workload.probe)
        assert run.result.match_count == selective_workload.expected_matches()

    def test_empty_probe(self, small_workload):
        run = SimpleHashJoin().run(small_workload.build, Relation.empty("S"))
        assert run.result.match_count == 0

    def test_basic_allocator_config(self, small_workload):
        config = HashJoinConfig(allocator_kind="basic")
        run = SimpleHashJoin(config).run(small_workload.build, small_workload.probe)
        assert run.result.match_count == small_workload.expected_matches()

    def test_grouping_config_does_not_change_result(self, skewed_workload):
        grouped = SimpleHashJoin(HashJoinConfig(grouping=True)).run(
            skewed_workload.build, skewed_workload.probe
        )
        ungrouped = SimpleHashJoin(HashJoinConfig(grouping=False)).run(
            skewed_workload.build, skewed_workload.probe
        )
        assert grouped.result.equals(ungrouped.result)

    def test_workload_dependent_steps_have_arrays(self, small_workload):
        run = SimpleHashJoin().run(small_workload.build, small_workload.probe)
        b3 = run.build.series[2]
        assert isinstance(b3.work.random_accesses, np.ndarray)
        p4 = run.probe.series[3]
        assert isinstance(p4.work.random_accesses, np.ndarray)


class TestPartitioningPlan:
    def test_plan_partitioning_targets_size(self):
        config = plan_partitioning(1_000_000, target_partition_tuples=64_000)
        assert config.n_partitions >= 16
        assert config.n_partitions <= 64

    def test_plan_partitioning_small_input(self):
        config = plan_partitioning(100, target_partition_tuples=64_000)
        assert config.n_partitions <= 2

    def test_multi_pass_when_many_bits_needed(self):
        config = plan_partitioning(10_000_000, target_partition_tuples=1_000, max_bits_per_pass=8)
        assert config.n_passes >= 2

    def test_invalid_configs_rejected(self):
        with pytest.raises(Exception):
            PartitionConfig(bits_per_pass=0)
        with pytest.raises(Exception):
            PartitionConfig(bits_per_pass=13, n_passes=3)

    def test_final_partition_ids_in_range(self):
        config = PartitionConfig(bits_per_pass=4, n_passes=2)
        ids = final_partition_ids(np.arange(10_000), config)
        assert ids.min() >= 0
        assert ids.max() < config.n_partitions


class TestPartitionedHashJoin:
    def test_matches_reference(self, small_workload):
        run = PartitionedHashJoin(target_partition_tuples=500).run(
            small_workload.build, small_workload.probe
        )
        reference = vectorized_reference_join(small_workload.build, small_workload.probe)
        assert run.result.equals(reference)

    def test_partition_pairs_align(self, small_workload):
        run = PartitionedHashJoin(target_partition_tuples=500).run(
            small_workload.build, small_workload.probe
        )
        build_sizes = run.partition_phase.build_partitions.partition_sizes()
        probe_sizes = run.partition_phase.probe_partitions.partition_sizes()
        assert build_sizes.sum() == small_workload.build_tuples
        assert probe_sizes.sum() == small_workload.probe_tuples

    def test_series_cover_all_tuples(self, small_workload):
        run = PartitionedHashJoin(target_partition_tuples=500).run(
            small_workload.build, small_workload.probe
        )
        total = small_workload.build_tuples + small_workload.probe_tuples
        for series in run.partition_phase.series_per_pass:
            assert series.n_tuples == total
        assert run.build_series.n_tuples == small_workload.build_tuples
        assert run.probe_series.n_tuples == small_workload.probe_tuples

    def test_multi_pass_partitioning_correct(self, small_workload):
        config = PartitionConfig(bits_per_pass=2, n_passes=2)
        run = PartitionedHashJoin(partition_config=config).run(
            small_workload.build, small_workload.probe
        )
        assert run.result.match_count == small_workload.expected_matches()
        assert len(run.partition_phase.series_per_pass) == 2

    def test_max_pair_table_smaller_than_shj_table(self, small_workload):
        shj = SimpleHashJoin().run(small_workload.build, small_workload.probe)
        phj = PartitionedHashJoin(target_partition_tuples=500).run(
            small_workload.build, small_workload.probe
        )
        assert phj.max_pair_table_bytes < shj.table.nbytes

    def test_skewed_workload_correct(self, skewed_workload):
        run = PartitionedHashJoin(target_partition_tuples=500).run(
            skewed_workload.build, skewed_workload.probe
        )
        assert run.result.match_count == skewed_workload.expected_matches()


class TestCoarseGrainedPHJ:
    def test_matches_reference(self, small_workload):
        run = CoarseGrainedPHJ(target_partition_tuples=500).run(
            small_workload.build, small_workload.probe
        )
        reference = vectorized_reference_join(small_workload.build, small_workload.probe)
        assert run.result.equals(reference)

    def test_pair_series_has_one_item_per_nonempty_pair(self, small_workload):
        run = CoarseGrainedPHJ(target_partition_tuples=500).run(
            small_workload.build, small_workload.probe
        )
        assert run.pair_series.n_steps == 1
        assert run.pair_series.n_tuples >= 1

    def test_private_tables_working_set_not_shared(self, small_workload):
        run = CoarseGrainedPHJ(target_partition_tuples=500).run(
            small_workload.build, small_workload.probe
        )
        ws = run.pair_series[0].working_set
        assert ws is not None
        assert ws.shared_between_devices is False
        assert run.total_table_bytes > 0
