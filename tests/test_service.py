"""Multi-query plan service: API validation, batched-vs-sequential parity,
shared-cache concurrency, and the process-wide cache singleton."""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.costmodel import (
    SharedEstimateCache,
    StepCost,
    estimate_series,
    estimate_series_batch,
    optimize_scheme,
    reset_shared_estimate_cache,
    shared_estimate_cache,
)
from repro.service import (
    PlanRequest,
    PlanResponse,
    PlanService,
    WorkloadError,
    load_workload,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TOL = 1e-12


def random_steps(rng: np.random.Generator, n: int) -> tuple[StepCost, ...]:
    return tuple(
        StepCost(
            f"s{i}",
            int(rng.integers(0, 200_000)),
            cpu_unit_s=float(rng.uniform(0.0, 5e-8)),
            gpu_unit_s=float(rng.uniform(0.0, 5e-8)),
            intermediate_bytes_per_tuple=float(rng.uniform(0.0, 16.0)),
        )
        for i in range(n)
    )


def fresh_service() -> PlanService:
    return PlanService(cache=SharedEstimateCache())


class TestPlanRequestValidation:
    def test_requires_steps(self):
        with pytest.raises(WorkloadError):
            PlanRequest(steps=())

    def test_rejects_unknown_scheme(self):
        steps = random_steps(np.random.default_rng(0), 2)
        with pytest.raises(WorkloadError):
            PlanRequest(steps=steps, scheme="TURBO")

    def test_scheme_normalised_to_upper(self):
        steps = random_steps(np.random.default_rng(0), 2)
        assert PlanRequest(steps=steps, scheme="pl").scheme == "PL"

    def test_rejects_bad_delta(self):
        steps = random_steps(np.random.default_rng(0), 2)
        for delta in (0.0, -0.1, 1.5):
            with pytest.raises(WorkloadError):
                PlanRequest(steps=steps, delta=delta)

    def test_what_if_needs_matching_ratios(self):
        steps = random_steps(np.random.default_rng(0), 3)
        with pytest.raises(WorkloadError):
            PlanRequest(steps=steps, scheme="WHAT-IF")
        with pytest.raises(WorkloadError):
            PlanRequest(steps=steps, scheme="WHAT-IF", ratios=(0.5,))
        with pytest.raises(WorkloadError):
            PlanRequest(steps=steps, scheme="WHAT-IF", ratios=(0.5, 0.5, 1.5))

    def test_task_key_ignores_request_id(self):
        steps = random_steps(np.random.default_rng(1), 3)
        a = PlanRequest(steps=steps, scheme="DD", request_id="a")
        b = PlanRequest(steps=steps, scheme="DD", request_id="b")
        assert a.task_key == b.task_key
        c = PlanRequest(steps=steps, scheme="DD", delta=0.5)
        assert c.task_key != a.task_key

    def test_task_key_ignores_ratios_for_optimisation_schemes(self):
        """Ratios are documented as ignored outside WHAT-IF; carrying them
        into the task key would silently defeat request deduplication."""
        steps = random_steps(np.random.default_rng(8), 3)
        bare = PlanRequest(steps=steps, scheme="PL", request_id="a")
        with_ratios = PlanRequest(
            steps=steps, scheme="PL", ratios=(0.5, 0.5, 0.5), request_id="b"
        )
        assert with_ratios.ratios is None
        assert bare.task_key == with_ratios.task_key
        service = fresh_service()
        responses = service.plan_many([bare, with_ratios])
        assert responses[0].group_size == 2
        assert service.stats()["requests_deduplicated"] == 1

    def test_dict_round_trip(self):
        steps = random_steps(np.random.default_rng(2), 3)
        request = PlanRequest(
            steps=steps, scheme="WHAT-IF", ratios=(0.1, 0.2, 0.3), request_id="w"
        )
        clone = PlanRequest.from_dict(json.loads(json.dumps(request.to_dict())))
        assert clone == request

    def test_load_workload_rejects_malformed(self):
        for payload in (
            {},  # no requests key
            {"requests": []},  # empty
            "nope",
            [{"scheme": "PL"}],  # missing steps
            [{"steps": [{"n_tuples": 5}]}],  # step missing unit costs
            [{"steps": [{"n_tuples": -1, "cpu_unit_s": 1, "gpu_unit_s": 1}]}],
        ):
            with pytest.raises(WorkloadError):
                load_workload(payload)

    def test_load_workload_applies_default_delta(self):
        steps = [
            {"name": "s", "n_tuples": 10, "cpu_unit_s": 1e-9, "gpu_unit_s": 1e-9}
        ]
        requests = load_workload(
            {
                "delta": 0.25,
                "requests": [
                    {"steps": steps},
                    {"steps": steps, "delta": 0.5},
                ],
            }
        )
        assert requests[0].delta == 0.25
        assert requests[1].delta == 0.5


class TestPlanServiceParity:
    """Batched service answers must equal per-request optimiser answers."""

    @SETTINGS
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from([0.02, 0.03, 0.1, 0.25, 1.0]),
    )
    def test_single_requests_match_optimizers(self, n_steps, seed, delta):
        steps = random_steps(np.random.default_rng(seed), n_steps)
        service = fresh_service()
        for scheme in ("PL", "OL", "DD", "CPU", "GPU"):
            response = service.plan(
                PlanRequest(steps=steps, scheme=scheme, delta=delta)
            )
            reference = optimize_scheme(scheme, list(steps), delta)
            assert response.ratios == reference.ratios
            assert response.total_s == reference.total_s
            assert response.estimate.cpu_step_s == reference.estimate.cpu_step_s
            assert response.estimate.cpu_delay_s == reference.estimate.cpu_delay_s
            assert response.evaluations == reference.evaluations

    @SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_mixed_batch_matches_sequential(self, seed):
        rng = np.random.default_rng(seed)
        all_series = [random_steps(rng, int(rng.integers(1, 7))) for _ in range(3)]
        schemes = ("PL", "OL", "DD")
        requests = [
            PlanRequest(
                steps=all_series[(i // 3) % 3],
                scheme=schemes[i % 3],
                request_id=f"q{i}",
            )
            for i in range(12)
        ]
        responses = fresh_service().plan_many(requests)
        assert [r.request_id for r in responses] == [r.request_id for r in requests]
        for response, request in zip(responses, requests):
            reference = optimize_scheme(request.scheme, list(request.steps))
            assert response.ratios == reference.ratios
            assert response.total_s == reference.total_s

    def test_degenerate_single_step(self):
        steps = (StepCost("only", 1_000, cpu_unit_s=2e-9, gpu_unit_s=1e-9),)
        for scheme in ("PL", "OL", "DD"):
            response = fresh_service().plan(PlanRequest(steps=steps, scheme=scheme))
            reference = optimize_scheme(scheme, list(steps))
            assert response.ratios == reference.ratios
            assert response.total_s == reference.total_s

    def test_degenerate_zero_cost_steps(self):
        steps = tuple(
            StepCost(f"z{i}", 10_000, cpu_unit_s=0.0, gpu_unit_s=0.0)
            for i in range(4)
        )
        for scheme in ("PL", "OL", "DD"):
            response = fresh_service().plan(PlanRequest(steps=steps, scheme=scheme))
            reference = optimize_scheme(scheme, list(steps))
            assert response.ratios == reference.ratios
            assert response.total_s == reference.total_s == 0.0

    def test_non_dividing_delta(self):
        steps = random_steps(np.random.default_rng(9), 4)
        for scheme in ("PL", "DD"):
            response = fresh_service().plan(
                PlanRequest(steps=steps, scheme=scheme, delta=0.03)
            )
            reference = optimize_scheme(scheme, list(steps), 0.03)
            assert response.ratios == reference.ratios
            assert response.total_s == reference.total_s

    def test_what_if_matches_reference_estimate(self):
        steps = random_steps(np.random.default_rng(4), 5)
        ratios = (0.1, 0.9, 0.4, 0.0, 1.0)
        response = fresh_service().plan(
            PlanRequest(steps=steps, scheme="WHAT-IF", ratios=ratios)
        )
        reference = estimate_series(list(steps), list(ratios))
        assert response.ratios == list(ratios)
        assert response.total_s == reference.total_s
        assert response.estimate.gpu_step_s == reference.gpu_step_s

    def test_duplicate_requests_deduplicated(self):
        steps = random_steps(np.random.default_rng(5), 4)
        requests = [
            PlanRequest(steps=steps, scheme="DD", request_id=f"q{i}")
            for i in range(6)
        ]
        service = fresh_service()
        responses = service.plan_many(requests)
        assert all(r.group_size == 6 for r in responses)
        assert responses[0].evaluations > 0
        assert all(r.evaluations == 0 for r in responses[1:])
        assert service.stats()["tasks_solved"] == 1
        assert service.stats()["requests_deduplicated"] == 5

    def test_responses_do_not_alias(self):
        steps = random_steps(np.random.default_rng(6), 3)
        service = fresh_service()
        requests = [
            PlanRequest(steps=steps, scheme="DD", request_id=f"q{i}")
            for i in range(2)
        ]
        first, second = service.plan_many(requests)
        first.estimate.cpu_step_s[0] = 1234.5
        assert second.estimate.cpu_step_s[0] != 1234.5
        third = service.plan(requests[0])
        assert third.estimate.cpu_step_s[0] != 1234.5

    def test_empty_batch(self):
        assert fresh_service().plan_many([]) == []

    def test_rejects_non_request(self):
        with pytest.raises(WorkloadError):
            fresh_service().plan_many(["PL"])

    def test_response_to_dict_is_json_serialisable(self):
        steps = random_steps(np.random.default_rng(7), 3)
        response = fresh_service().plan(PlanRequest(steps=steps, scheme="PL"))
        payload = json.loads(json.dumps(response.to_dict()))
        assert payload["scheme"] == "PL"
        assert payload["total_s"] == pytest.approx(response.total_s)


class TestSharedCacheConcurrency:
    """Hammer the shared cache and the service from a thread pool."""

    N_THREADS = 8

    def test_concurrent_totals_bit_match_scalar_reference(self):
        rng = np.random.default_rng(11)
        all_series = [random_steps(rng, 5) for _ in range(4)]
        matrices = [rng.uniform(0.0, 1.0, size=(40, 5)) for _ in range(4)]
        cache = SharedEstimateCache()

        def worker(k: int) -> np.ndarray:
            series = all_series[k % 4]
            matrix = matrices[k % 4]
            out = None
            for _ in range(5):
                out = cache.totals(series, matrix)
            return out

        with ThreadPoolExecutor(max_workers=self.N_THREADS) as pool:
            results = list(pool.map(worker, range(16)))

        for k, totals in enumerate(results):
            series, matrix = all_series[k % 4], matrices[k % 4]
            engine = estimate_series_batch(series, matrix).total_s
            assert np.array_equal(totals, engine)
            for i in range(matrix.shape[0]):
                scalar = estimate_series(list(series), matrix[i].tolist()).total_s
                assert totals[i] == pytest.approx(scalar, abs=TOL, rel=TOL)

    def test_no_lost_counter_updates(self):
        rng = np.random.default_rng(12)
        all_series = [random_steps(rng, 4) for _ in range(4)]
        matrices = [rng.uniform(0.0, 1.0, size=(25, 4)) for _ in range(4)]
        cache = SharedEstimateCache()
        rounds = 6

        def worker(k: int) -> None:
            for _ in range(rounds):
                cache.totals(all_series[k % 4], matrices[k % 4])

        with ThreadPoolExecutor(max_workers=self.N_THREADS) as pool:
            list(pool.map(worker, range(16)))

        total_rows = 16 * rounds * 25
        assert cache.hits + cache.misses == total_rows
        # Rows are only ever computed once per distinct (series, row) pair:
        # the coarse lock means no thread can race a concurrent miss.
        assert cache.misses == 4 * 25
        assert len(cache) == 4 * 25

    def test_concurrent_service_plans_match_reference(self):
        rng = np.random.default_rng(13)
        all_series = [random_steps(rng, int(rng.integers(1, 7))) for _ in range(5)]
        schemes = ("PL", "OL", "DD", "CPU", "GPU")
        requests = [
            PlanRequest(
                steps=all_series[i % 5],
                scheme=schemes[(i // 5) % 5],
                request_id=f"q{i}",
            )
            for i in range(25)
        ]
        references = {
            r.request_id: optimize_scheme(r.scheme, list(r.steps)) for r in requests
        }
        service = fresh_service()

        with ThreadPoolExecutor(max_workers=self.N_THREADS) as pool:
            responses = list(pool.map(service.plan, requests))

        for response in responses:
            reference = references[response.request_id]
            assert response.ratios == reference.ratios
            assert response.total_s == reference.total_s
        assert service.stats()["requests_served"] == len(requests)

    def test_concurrent_plan_many_batches(self):
        rng = np.random.default_rng(14)
        steps = random_steps(rng, 6)
        requests = [
            PlanRequest(steps=steps, scheme=s, request_id=s)
            for s in ("PL", "OL", "DD")
        ]
        references = {
            r.request_id: optimize_scheme(r.scheme, list(r.steps)) for r in requests
        }
        service = fresh_service()

        with ThreadPoolExecutor(max_workers=self.N_THREADS) as pool:
            batches = list(
                pool.map(lambda _: service.plan_many(requests), range(12))
            )

        for batch in batches:
            for response in batch:
                reference = references[response.request_id]
                assert response.ratios == reference.ratios
                assert response.total_s == reference.total_s


class TestProcessWideCache:
    def test_singleton_identity(self):
        cache = reset_shared_estimate_cache()
        assert shared_estimate_cache() is cache
        assert shared_estimate_cache() is shared_estimate_cache()
        replacement = reset_shared_estimate_cache()
        assert replacement is not cache
        assert shared_estimate_cache() is replacement

    def test_service_defaults_to_shared_cache(self):
        cache = reset_shared_estimate_cache()
        service = PlanService()
        assert service.cache is cache

    def test_planner_defaults_to_shared_cache(self):
        from repro.core.planner import JoinPlanner

        cache = reset_shared_estimate_cache()
        planner = JoinPlanner()
        assert planner.estimate_cache is cache
        private = SharedEstimateCache()
        assert JoinPlanner(cache=private).estimate_cache is private

    def test_monte_carlo_uses_shared_cache_by_default(self):
        from repro.costmodel import run_monte_carlo

        cache = reset_shared_estimate_cache()
        steps = list(random_steps(np.random.default_rng(15), 3))
        run_monte_carlo(steps, lambda r: 1.0, [0.5] * 3, n_samples=10, seed=2)
        first_misses = cache.misses
        assert first_misses > 0
        run_monte_carlo(steps, lambda r: 1.0, [0.5] * 3, n_samples=10, seed=2)
        assert cache.misses == first_misses  # second study fully reused
