"""Tests for the ``repro lint`` static-analysis suite (ISSUE 6).

Every checker is proven live against seeded violations in
``tests/analysis_fixtures/`` — and proven quiet against each fixture's
clean twin.  The CLI round-trips (text/json formats, exit codes 0/1/2,
``--output`` failure handling) are exercised through ``repro.cli.main``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    LintConfigError,
    Project,
    SourceFile,
    all_checkers,
    get_checker,
    load_project,
    run_lint,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).parents[1]


def fixture_source(rel: str) -> SourceFile:
    path = FIXTURES / rel
    return SourceFile(path=path, rel=rel, text=path.read_text(encoding="utf-8"))


def check_file(checker_id: str, rel: str):
    return get_checker(checker_id).check_file(fixture_source(rel))


# ---------------------------------------------------------------------------
# Framework basics
# ---------------------------------------------------------------------------
class TestFramework:
    def test_eight_checkers_registered(self):
        ids = set(all_checkers())
        assert {
            "lock-discipline",
            "kernel-parity",
            "numpy-hygiene",
            "async-blocking",
            "wire-precision",
            "fork-safety",
            "lock-order",
            "pool-payload",
            "error-taxonomy",
        } <= ids

    def test_finding_keys_are_symbol_based_not_line_based(self):
        findings = check_file("lock-discipline", "lock_bad.py")
        assert findings
        for finding in findings:
            assert str(finding.line) not in finding.key.split(":")[-1]
            assert finding.key.startswith("lock-discipline:lock_bad.py:")

    def test_inline_suppression_moves_finding_to_suppressed(self, tmp_path):
        text = (
            "from repro.locking import make_lock\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = make_lock('c')\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n"
            "    def peek(self):\n"
            "        return self.n  # repro: ignore[lock-discipline] advisory read\n"
        )
        path = tmp_path / "mod.py"
        path.write_text(text)
        project = Project(src_files=[SourceFile(path, "mod.py", text)])
        result = run_lint(project, checker_ids=["lock-discipline"])
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_file_level_suppression(self, tmp_path):
        text = (
            "# repro: ignore-file[lock-discipline]\n"
            "from repro.locking import make_lock\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = make_lock('c')\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n"
            "    def peek(self):\n"
            "        return self.n\n"
        )
        path = tmp_path / "mod.py"
        path.write_text(text)
        project = Project(src_files=[SourceFile(path, "mod.py", text)])
        result = run_lint(project, checker_ids=["lock-discipline"])
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_allowlist_grandfathers_by_stable_key(self):
        source = fixture_source("lock_bad.py")
        project = Project(src_files=[source])
        baseline = run_lint(project, checker_ids=["lock-discipline"])
        keys = {f.key for f in baseline.findings}
        replay = run_lint(project, checker_ids=["lock-discipline"], allowlist=keys)
        assert replay.findings == []
        assert len(replay.allowlisted) == len(baseline.findings)

    def test_unknown_checker_is_config_error(self):
        project = Project(src_files=[fixture_source("lock_clean.py")])
        with pytest.raises(LintConfigError):
            run_lint(project, checker_ids=["does-not-exist"])


# ---------------------------------------------------------------------------
# Checker: lock-discipline
# ---------------------------------------------------------------------------
class TestLockDiscipline:
    def test_catches_seeded_violations(self):
        findings = check_file("lock-discipline", "lock_bad.py")
        contexts = sorted(f.key.split(":", 2)[-1] for f in findings)
        assert contexts == [
            "Counter.__repr__.count",
            "Counter.read_unlocked.count",
            "SharedChild.peek.value",
            "raw-lock:Counter.__init__",
            "raw-lock:SharedChild.__init__",
        ]

    def test_clean_twin_is_quiet(self):
        assert check_file("lock-discipline", "lock_clean.py") == []


# ---------------------------------------------------------------------------
# Checker: kernel-parity (cross-file)
# ---------------------------------------------------------------------------
class TestKernelParity:
    def project(self) -> Project:
        return Project(
            src_files=[fixture_source("parity_src/kernels.py")],
            test_files=[fixture_source("parity_tests/checks_kernels.py")],
        )

    def test_flags_exactly_the_uncovered_toggles(self):
        findings = get_checker("kernel-parity").check_project(self.project())
        contexts = sorted(f.key.rsplit(":", 1)[-1] for f in findings)
        assert contexts == [
            "UncoveredTable.use_batch",
            "implicit_join.vectorized",
            "uncovered_join.fused",
        ]

    def test_explicit_toggle_call_counts_as_coverage(self):
        findings = get_checker("kernel-parity").check_project(self.project())
        covered = {"covered_join.use_bulk", "CoveredTable.use_kernels"}
        assert not covered & {f.key.rsplit(":", 1)[-1] for f in findings}


# ---------------------------------------------------------------------------
# Checker: numpy-hygiene
# ---------------------------------------------------------------------------
class TestNumpyHygiene:
    def test_catches_seeded_violations(self):
        findings = check_file("numpy-hygiene", "hygiene_bad.py")
        contexts = sorted(f.key.rsplit(":", 1)[-1] for f in findings)
        assert contexts == [
            "concat_parts.alloc-in-loop.concatenate",
            "sum_rows.loop-over-array.matrix",
            "widen.dtype-widening.column",
        ]

    def test_reference_marker_exempts_scalar_twin(self):
        findings = check_file("numpy-hygiene", "hygiene_bad.py")
        assert not any("reference_sum" in f.key for f in findings)

    def test_clean_twin_is_quiet(self):
        assert check_file("numpy-hygiene", "hygiene_clean.py") == []

    def test_unmarked_module_is_skipped(self):
        source = fixture_source("hygiene_bad.py")
        unmarked = SourceFile(
            path=source.path,
            rel=source.rel,
            text=source.text.replace("# repro: kernel", "# plain module"),
        )
        assert get_checker("numpy-hygiene").check_file(unmarked) == []


# ---------------------------------------------------------------------------
# Checker: async-blocking
# ---------------------------------------------------------------------------
class TestAsyncBlocking:
    def test_catches_seeded_violations(self):
        findings = check_file("async-blocking", "async_bad.py")
        contexts = sorted(f.key.rsplit(":", 1)[-1] for f in findings)
        assert contexts == ["fetch.subprocess.run", "load.open", "tick.time.sleep"]

    def test_clean_twin_is_quiet(self):
        assert check_file("async-blocking", "async_clean.py") == []


# ---------------------------------------------------------------------------
# Checker: wire-precision
# ---------------------------------------------------------------------------
class TestWirePrecision:
    def test_catches_seeded_violations(self):
        findings = check_file("wire-precision", "wire_bad.py")
        contexts = sorted(f.key.rsplit(":", 1)[-1] for f in findings)
        assert contexts == [
            "envelope.fstring-format",
            "response_to_wire.round",
            "response_to_wire.str.delta",
            "stats_to_wire.percent-format",
        ]

    def test_display_code_outside_wire_scope_not_flagged(self):
        findings = check_file("wire-precision", "wire_bad.py")
        assert not any("display_summary" in f.key for f in findings)

    def test_clean_twin_is_quiet(self):
        assert check_file("wire-precision", "wire_clean.py") == []


# ---------------------------------------------------------------------------
# The repo graph (ISSUE 9 whole-program phase)
# ---------------------------------------------------------------------------
class TestModuleGraph:
    def test_module_names_strip_src_and_collapse_init(self):
        from repro.analysis.graph import module_name_for

        assert module_name_for("src/repro/hashjoin/parallel.py") == (
            "repro.hashjoin.parallel"
        )
        assert module_name_for("src/repro/analysis/__init__.py") == "repro.analysis"
        assert module_name_for("forksafety_src/boundary.py") == (
            "forksafety_src.boundary"
        )

    def test_closure_follows_relative_imports(self):
        project = Project(
            src_files=[
                fixture_source("forksafety_src/boundary.py"),
                fixture_source("forksafety_src/resources.py"),
            ]
        )
        graph = project.graph()
        closure = graph.closure(["forksafety_src.boundary"])
        assert closure == {
            "forksafety_src.boundary",
            "forksafety_src.resources",
        }

    def test_alias_resolution_expands_import_as(self, tmp_path):
        text = "import numpy as np\nimport os\n"
        path = tmp_path / "m.py"
        path.write_text(text)
        project = Project(src_files=[SourceFile(path, "m.py", text)])
        graph = project.graph()
        info = graph.by_rel["m.py"]
        assert graph.resolve_target(info, "np.random.default_rng") == (
            "numpy.random.default_rng"
        )
        assert graph.resolve_target(info, "os.fork") == "os.fork"

    def test_graph_is_cached_on_the_project(self):
        project = Project(src_files=[fixture_source("lockorder_clean.py")])
        assert project.graph() is project.graph()


# ---------------------------------------------------------------------------
# Checker: fork-safety (cross-file)
# ---------------------------------------------------------------------------
class TestForkSafety:
    def project(self, kind: str) -> Project:
        return Project(
            src_files=[
                fixture_source(f"forksafety_{kind}/boundary.py"),
                fixture_source(f"forksafety_{kind}/resources.py"),
            ]
        )

    def test_catches_seeded_violations(self):
        findings = get_checker("fork-safety").check_project(self.project("src"))
        contexts = sorted(f.key.split(":", 2)[-1] for f in findings)
        assert contexts == [
            "DB",
            "GUARD",
            "POOLS",
            "StoreLike._conn",
            "StoreLike._worker",
        ]
        assert all("fork boundary" in f.message or "forks" in f.message
                   for f in findings)

    def test_clean_twin_is_quiet(self):
        findings = get_checker("fork-safety").check_project(self.project("clean"))
        assert findings == []

    def test_no_fork_boundary_means_no_findings(self):
        # Module-level locks with no fork boundary anywhere in the project
        # (lockorder_bad.py never forks) must be silent: resources are only
        # hazards when a fork boundary can reach them.
        project = Project(src_files=[fixture_source("lockorder_bad.py")])
        assert get_checker("fork-safety").check_project(project) == []


# ---------------------------------------------------------------------------
# Checker: lock-order (cross-file)
# ---------------------------------------------------------------------------
class TestLockOrder:
    def test_catches_seeded_cycle_and_self_deadlock(self):
        project = Project(src_files=[fixture_source("lockorder_bad.py")])
        findings = get_checker("lock-order").check_project(project)
        contexts = sorted(f.key.split(":", 2)[-1] for f in findings)
        assert contexts == [
            "cycle:fixture-a->fixture-b",
            "self-cycle:fixture-self",
        ]
        cycle = next(f for f in findings if "cycle:fixture-a" in f.key)
        # Both witness sites appear so either thread's path is actionable.
        assert "fixture-a" in cycle.message and "fixture-b" in cycle.message

    def test_clean_twin_is_quiet(self):
        project = Project(src_files=[fixture_source("lockorder_clean.py")])
        assert get_checker("lock-order").check_project(project) == []

    def test_cycle_key_is_stable_under_reordering(self):
        # The key sorts lock names, so the same cycle found from the other
        # direction grandfathers identically.
        project = Project(src_files=[fixture_source("lockorder_bad.py")])
        findings = get_checker("lock-order").check_project(project)
        keys = {f.key for f in findings}
        assert (
            "lock-order:lockorder_bad.py:cycle:fixture-a->fixture-b" in keys
        )


# ---------------------------------------------------------------------------
# Checker: pool-payload (cross-file)
# ---------------------------------------------------------------------------
class TestPoolPayload:
    def test_catches_seeded_violations(self):
        project = Project(src_files=[fixture_source("poolpayload_bad.py")])
        findings = get_checker("pool-payload").check_project(project)
        contexts = sorted(f.key.split(":", 2)[-1] for f in findings)
        assert contexts == [
            "Dispatcher.run.callable",
            "run_direct.callable",
            "run_nested.callable",
            "run_payload.payload",
            "run_wrapped.callable",
        ]

    def test_clean_twin_is_quiet(self):
        project = Project(src_files=[fixture_source("poolpayload_clean.py")])
        assert get_checker("pool-payload").check_project(project) == []

    def test_thread_pools_are_never_flagged(self):
        project = Project(src_files=[fixture_source("poolpayload_clean.py")])
        findings = get_checker("pool-payload").check_project(project)
        assert not any("run_threads" in f.key for f in findings)


# ---------------------------------------------------------------------------
# Checker: error-taxonomy (cross-file)
# ---------------------------------------------------------------------------
class TestErrorTaxonomy:
    @staticmethod
    def project(kind: str) -> Project:
        return Project(
            src_files=[
                fixture_source(f"errortaxonomy_{kind}/protocol.py"),
                fixture_source(f"errortaxonomy_{kind}/handlers.py"),
            ]
        )

    def test_catches_seeded_violations(self):
        findings = get_checker("error-taxonomy").check_project(
            self.project("src")
        )
        contexts = sorted(f.key.split(":", 2)[-1] for f in findings)
        assert contexts == [
            # protocol.py: computed taxonomy value + advertised-but-missing.
            "ERROR_CODES.peer-lost",
            "ERROR_TAXONOMY.bad-request",
            # handlers.py: literal, constant-resolved, and positional codes.
            "overloaded.handler-overloaded",
            "reject.not-registered",
            "schedule.also-missing",
        ]

    def test_registered_and_dynamic_codes_are_not_flagged(self):
        findings = get_checker("error-taxonomy").check_project(
            self.project("src")
        )
        assert not any("clean" in f.key for f in findings)
        assert not any("passthrough" in f.key for f in findings)

    def test_clean_twin_is_quiet(self):
        findings = get_checker("error-taxonomy").check_project(
            self.project("clean")
        )
        assert findings == []

    def test_no_protocol_table_means_no_findings(self):
        # A project without an ERROR_TAXONOMY-bearing protocol.py has no
        # contract to enforce — constructions are silent.
        project = Project(
            src_files=[fixture_source("errortaxonomy_src/handlers.py")]
        )
        assert get_checker("error-taxonomy").check_project(project) == []


# ---------------------------------------------------------------------------
# The repo itself must lint clean (the CI gate's contract)
# ---------------------------------------------------------------------------
class TestRepoIsClean:
    def test_repo_lints_clean_with_all_checkers(self):
        result = run_lint(load_project(REPO_ROOT))
        assert result.findings == [], "\n".join(
            f"{f.location()}: [{f.checker}] {f.message}" for f in result.findings
        )
        assert len(result.checkers) >= 9


# ---------------------------------------------------------------------------
# CLI round trips
# ---------------------------------------------------------------------------
def seed_mini_repo(tmp_path: Path, violation: bool) -> Path:
    src = tmp_path / "src"
    src.mkdir()
    peek_body = (
        "        return self.n\n"
        if violation
        else "        with self._lock:\n            return self.n\n"
    )
    (src / "mod.py").write_text(
        "from repro.locking import make_lock\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = make_lock('mini')\n"
        "        self.n = 0\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self.n += 1\n"
        "    def peek(self):\n" + peek_body
    )
    (tmp_path / "tests").mkdir()
    return tmp_path


class TestCli:
    def test_clean_repo_exits_0(self, tmp_path, capsys):
        root = seed_mini_repo(tmp_path, violation=False)
        assert main(["lint", "--root", str(root)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_1_with_locations(self, tmp_path, capsys):
        root = seed_mini_repo(tmp_path, violation=True)
        assert main(["lint", "--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "src/mod.py:10" in out
        assert "lock-discipline" in out

    def test_json_format_round_trips(self, tmp_path, capsys):
        root = seed_mini_repo(tmp_path, violation=True)
        assert main(["lint", "--root", str(root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "findings"
        (finding,) = payload["findings"]
        assert finding["checker"] == "lock-discipline"
        assert finding["path"] == "src/mod.py"
        assert finding["line"] == 10
        assert finding["key"] == "lock-discipline:src/mod.py:C.peek.n"

    def test_json_per_checker_counts_and_suppression_inventory(
        self, tmp_path, capsys
    ):
        # The machine-readable artifact CI uploads (LINT_9.json) needs
        # per-checker counts and the suppression inventory on every run.
        root = seed_mini_repo(tmp_path, violation=True)
        main(["lint", "--root", str(root), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["per_checker"]["lock-discipline"]["findings"] == 1
        assert payload["per_checker"]["fork-safety"]["findings"] == 0
        assert payload["suppressions"] == []

    def test_allowlist_file_grandfathers_finding(self, tmp_path, capsys):
        root = seed_mini_repo(tmp_path, violation=True)
        allowlist = tmp_path / "lint-allowlist.txt"
        allowlist.write_text(
            "# grandfathered pre-existing violations\n"
            "lock-discipline:src/mod.py:C.peek.n\n"
        )
        code = main(
            ["lint", "--root", str(root), "--allowlist", str(allowlist)]
        )
        assert code == 0
        assert "1 allowlisted" in capsys.readouterr().out

    def test_unknown_checker_exits_2(self, tmp_path, capsys):
        root = seed_mini_repo(tmp_path, violation=False)
        assert main(["lint", "--root", str(root), "--checker", "nope"]) == 2
        assert "unknown checker" in capsys.readouterr().err

    def test_unparseable_source_exits_2(self, tmp_path, capsys):
        root = seed_mini_repo(tmp_path, violation=False)
        (root / "src" / "broken.py").write_text("def oops(:\n")
        assert main(["lint", "--root", str(root)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_output_write_failure_exits_2(self, tmp_path, capsys):
        root = seed_mini_repo(tmp_path, violation=False)
        target = tmp_path / "no-such-dir" / "report.txt"
        code = main(["lint", "--root", str(root), "--output", str(target)])
        assert code == 2
        assert "cannot write lint report" in capsys.readouterr().err

    def test_output_writes_report_file(self, tmp_path, capsys):
        root = seed_mini_repo(tmp_path, violation=True)
        target = tmp_path / "report.json"
        code = main(
            [
                "lint",
                "--root",
                str(root),
                "--format",
                "json",
                "--output",
                str(target),
            ]
        )
        assert code == 1
        payload = json.loads(target.read_text())
        assert payload["status"] == "findings"

    def test_checker_selection_runs_subset(self, tmp_path, capsys):
        root = seed_mini_repo(tmp_path, violation=True)
        code = main(
            ["lint", "--root", str(root), "--checker", "wire-precision"]
        )
        assert code == 0  # the seeded violation is a lock one
        out = capsys.readouterr().out
        assert "1 checkers: wire-precision" in out

    def test_list_checkers(self, capsys):
        assert main(["lint", "--list-checkers"]) == 0
        out = capsys.readouterr().out
        for checker_id in all_checkers():
            assert checker_id in out
