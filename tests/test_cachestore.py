"""Persistent estimate-cache store (ISSUE 7 tentpole).

The properties pinned here:

* codecs are **bit-exact**: an estimate written through the JSON codec reads
  back IEEE-754-identical, so serving from the store cannot perturb plans;
* a cache restarted against a warmed store answers from the store — hits
  (and ``store_hits``) are billed exactly as if the rows were in memory;
* byte-exact verification survives persistence: a stored neighbour that
  collides at the quantisation decimal is recomputed, never served;
* corruption degrades instead of crashing — a bad database falls back to a
  cold in-memory cache, a store error after open marks the store dead and
  every later call fail-softs, a malformed row reads as a miss;
* the shared admission table debits one token bucket per client with
  deterministic refill arithmetic.
"""

from __future__ import annotations

import os
import sqlite3

import numpy as np
import pytest

from repro.costmodel import StepCost, estimate_series, steps_fingerprint
from repro.costmodel.batch import EstimateCache, SharedEstimateCache
from repro.costmodel.cachestore import (
    SCHEMA_VERSION,
    CacheStoreError,
    EstimateCacheStore,
    PersistentEstimateCache,
    decode_estimate,
    encode_estimate,
    encode_fingerprint,
    open_persistent_cache,
)


def random_steps(rng: np.random.Generator, n: int) -> list[StepCost]:
    return [
        StepCost(
            f"s{i}",
            int(rng.integers(10_000, 200_000)),
            cpu_unit_s=float(rng.uniform(1e-9, 5e-8)),
            gpu_unit_s=float(rng.uniform(1e-9, 5e-8)),
            intermediate_bytes_per_tuple=float(rng.uniform(0.0, 16.0)),
        )
        for i in range(n)
    ]


def ratio_matrix(rng: np.random.Generator, m: int, n: int) -> np.ndarray:
    return rng.uniform(0.05, 0.95, size=(m, n))


@pytest.fixture
def store_path(tmp_path) -> str:
    return os.path.join(tmp_path, "cache.db")


# ---------------------------------------------------------------------------
# Codecs.
# ---------------------------------------------------------------------------
class TestCodecs:
    def test_fingerprint_encoding_is_canonical_json(self):
        steps = random_steps(np.random.default_rng(0), 4)
        encoded = encode_fingerprint(steps_fingerprint(steps))
        assert isinstance(encoded, bytes)
        # Deterministic: the same series encodes to the same key bytes.
        assert encoded == encode_fingerprint(steps_fingerprint(steps))
        other = encode_fingerprint(steps_fingerprint(steps[:3]))
        assert other != encoded

    def test_estimate_round_trip_is_bit_exact(self):
        rng = np.random.default_rng(1)
        steps = random_steps(rng, 5)
        reference = estimate_series(steps, [float(r) for r in rng.uniform(0.1, 0.9, 5)])
        clone = decode_estimate(encode_estimate(reference))
        assert clone.ratios == reference.ratios
        assert clone.cpu_step_s == reference.cpu_step_s
        assert clone.gpu_step_s == reference.gpu_step_s
        assert clone.cpu_delay_s == reference.cpu_delay_s
        assert clone.gpu_delay_s == reference.gpu_delay_s
        assert clone.intermediate_bytes == reference.intermediate_bytes

    @pytest.mark.parametrize(
        "text",
        [
            "[]",
            "42",
            '{"ratios": 3}',
            '{"ratios": [0.5]}',  # missing the step vectors
            '{"ratios": [0.5], "cpu_step_s": "no", "gpu_step_s": [], '
            '"cpu_delay_s": [], "gpu_delay_s": []}',
        ],
    )
    def test_decode_rejects_malformed_rows(self, text):
        with pytest.raises(ValueError):
            decode_estimate(text)


# ---------------------------------------------------------------------------
# The store itself.
# ---------------------------------------------------------------------------
class TestEstimateCacheStore:
    def test_totals_round_trip_chunked(self, store_path):
        # More rows than one SELECT chunk (400) to cross the IN-list split.
        rows = [
            (f"k{i:04d}".encode(), f"e{i:04d}".encode(), float(i) * 0.5)
            for i in range(900)
        ]
        with EstimateCacheStore(store_path) as store:
            store.enqueue_totals(b"fp", [(k, e, t) for k, e, t in rows])
            assert store.flush() == 900
            found = store.fetch_totals(b"fp", [k for k, _, _ in rows])
            assert len(found) == 900
            assert found[b"k0007"] == (b"e0007", 3.5)
            # Unknown keys and foreign fingerprints read as misses.
            assert store.fetch_totals(b"fp", [b"nope"]) == {}
            assert store.fetch_totals(b"other", [b"k0007"]) == {}
            assert store.count_rows() == (900, 0)

    def test_estimate_row_round_trip(self, store_path):
        with EstimateCacheStore(store_path) as store:
            store.enqueue_estimate(b"fp", b"key", b"exact", '{"x": 1}')
            store.flush()
            assert store.fetch_estimate(b"fp", b"key") == (b"exact", '{"x": 1}')
            assert store.fetch_estimate(b"fp", b"other") is None
            assert store.count_rows() == (0, 1)

    def test_close_flushes_the_write_behind_tail(self, store_path):
        store = EstimateCacheStore(store_path, flush_interval_s=3600.0)
        store.enqueue_totals(b"fp", [(b"k", b"e", 1.25)])
        assert store.pending_rows() == 1
        store.close()  # no explicit flush: close() must write the tail
        with EstimateCacheStore(store_path) as reopened:
            assert reopened.fetch_totals(b"fp", [b"k"]) == {b"k": (b"e", 1.25)}

    def test_backlog_wakes_the_flusher(self, store_path):
        import time

        with EstimateCacheStore(
            store_path, flush_interval_s=3600.0, flush_batch=4
        ) as store:
            store.enqueue_totals(
                b"fp", [(f"k{i}".encode(), b"e", float(i)) for i in range(5)]
            )
            deadline = time.monotonic() + 5.0
            while store.pending_rows() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert store.pending_rows() == 0
            assert store.rows_flushed == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"flush_interval_s": 0.0},
            {"flush_batch": 0},
            {"synchronous": "EXTREME"},
        ],
    )
    def test_constructor_validation(self, store_path, kwargs):
        with pytest.raises(ValueError):
            EstimateCacheStore(store_path, **kwargs)

    def test_wrong_schema_version_is_refused(self, store_path):
        EstimateCacheStore(store_path).close()
        conn = sqlite3.connect(store_path)
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(CacheStoreError, match="schema version"):
            EstimateCacheStore(store_path)

    def test_corrupt_file_is_refused(self, store_path):
        with open(store_path, "wb") as fh:
            fh.write(b"this is not a sqlite database at all\x00" * 4)
        with pytest.raises(CacheStoreError):
            EstimateCacheStore(store_path)

    def test_dead_store_fail_softs_everywhere(self, store_path):
        store = EstimateCacheStore(store_path)
        store.enqueue_totals(b"fp", [(b"k", b"e", 1.0)])
        store.flush()
        # Simulate the database dying under a live server: every later call
        # must degrade to a miss / no-op, never raise.
        store._conn.close()
        assert store.fetch_totals(b"fp", [b"k"]) == {}
        assert store.dead
        assert store.fetch_estimate(b"fp", b"k") is None
        store.enqueue_totals(b"fp", [(b"k2", b"e", 2.0)])
        assert store.flush() == 0
        assert store.count_rows() == (0, 0)
        assert store.admission_acquire("c", rate=1.0, burst=1.0) is True  # fails open
        assert store.stats()["dead"] is True
        store.close()

    def test_admission_bucket_refill_and_debit(self, store_path):
        with EstimateCacheStore(store_path) as store:
            acquire = lambda now: store.admission_acquire(
                "alice", rate=1.0, burst=2.0, now=now
            )
            assert acquire(100.0) is True  # burst grants two
            assert acquire(100.0) is True
            assert acquire(100.0) is False  # bucket empty
            assert acquire(100.5) is False  # half a token is not one
            assert acquire(101.5) is True  # 1.5s * 1/s refilled past one
            # Buckets are per client: bob's burst is untouched by alice.
            assert store.admission_acquire("bob", rate=1.0, burst=2.0, now=100.0)

    def test_admission_burst_caps_refill(self, store_path):
        with EstimateCacheStore(store_path) as store:
            assert store.admission_acquire("c", rate=10.0, burst=1.0, now=0.0)
            assert not store.admission_acquire("c", rate=10.0, burst=1.0, now=0.0)
            # A long idle period refills to burst, not to rate * elapsed.
            assert store.admission_acquire("c", rate=10.0, burst=1.0, now=1000.0)
            assert not store.admission_acquire("c", rate=10.0, burst=1.0, now=1000.0)


# ---------------------------------------------------------------------------
# The persistent cache over the store.
# ---------------------------------------------------------------------------
class TestPersistentEstimateCache:
    def test_warm_restart_serves_totals_from_the_store(self, store_path):
        rng = np.random.default_rng(7)
        steps = random_steps(rng, 5)
        matrix = ratio_matrix(rng, 24, 5)

        first = PersistentEstimateCache(EstimateCacheStore(store_path))
        warm = first.totals(steps, matrix)
        assert first.misses == 24 and first.store_hits == 0
        first.close()

        # A brand-new process: empty memory tier, warmed store.
        second = PersistentEstimateCache(EstimateCacheStore(store_path))
        restored = second.totals(steps, matrix)
        assert np.array_equal(restored, warm)  # bit-identical
        assert second.hits == 24
        assert second.misses == 0
        assert second.store_hits == 24
        # The rows are now in the memory tier: a third call never reads SQLite.
        reads_before = second.store.reads
        again = second.totals(steps, matrix)
        assert np.array_equal(again, warm)
        assert second.store.reads == reads_before
        # Parity with a plain in-memory cache over the same inputs.
        assert np.array_equal(warm, SharedEstimateCache().totals(steps, matrix))
        second.close()

    def test_warm_restart_serves_estimates_from_the_store(self, store_path):
        rng = np.random.default_rng(8)
        steps = random_steps(rng, 4)
        ratios = [float(r) for r in rng.uniform(0.1, 0.9, 4)]

        first = PersistentEstimateCache(EstimateCacheStore(store_path))
        warm = first.estimate(steps, ratios)
        first.close()

        second = PersistentEstimateCache(EstimateCacheStore(store_path))
        restored = second.estimate(steps, ratios)
        assert second.hits == 1 and second.misses == 0 and second.store_hits == 1
        assert restored.ratios == warm.ratios
        assert restored.cpu_step_s == warm.cpu_step_s
        assert restored.gpu_step_s == warm.gpu_step_s
        assert restored.cpu_delay_s == warm.cpu_delay_s
        assert restored.gpu_delay_s == warm.gpu_delay_s
        assert restored.intermediate_bytes == warm.intermediate_bytes
        second.close()

    def test_colliding_quantised_rows_recomputed_not_served(self, store_path):
        rng = np.random.default_rng(9)
        steps = random_steps(rng, 3)
        base = np.full((1, 3), 0.5)
        # Differs only past the 12th decimal: same quantised store key,
        # different exact bytes — the store row must NOT be served.
        nudged = base + 1e-15
        assert np.array_equal(np.round(base, 12), np.round(nudged, 12))
        assert base.tobytes() != nudged.tobytes()

        first = PersistentEstimateCache(EstimateCacheStore(store_path))
        first.totals(steps, base)
        first.close()

        second = PersistentEstimateCache(EstimateCacheStore(store_path))
        result = second.totals(steps, nudged)
        assert second.store_hits == 0  # exact-bytes check rejected the row
        assert second.misses == 1
        assert np.array_equal(result, SharedEstimateCache().totals(steps, nudged))
        second.close()

    def test_malformed_store_row_reads_as_a_miss(self, store_path):
        rng = np.random.default_rng(10)
        steps = random_steps(rng, 4)
        ratios = [float(r) for r in rng.uniform(0.1, 0.9, 4)]

        first = PersistentEstimateCache(EstimateCacheStore(store_path))
        warm = first.estimate(steps, ratios)
        first.close()
        conn = sqlite3.connect(store_path)
        conn.execute("UPDATE estimates SET estimate = '{\"broken'")
        conn.commit()
        conn.close()

        second = PersistentEstimateCache(EstimateCacheStore(store_path))
        recomputed = second.estimate(steps, ratios)  # must not raise
        assert second.store_hits == 0
        assert second.misses == 1
        assert recomputed.ratios == warm.ratios
        assert recomputed.cpu_step_s == warm.cpu_step_s
        second.close()

    def test_stats_nest_the_store_counters(self, store_path):
        cache = PersistentEstimateCache(EstimateCacheStore(store_path))
        rng = np.random.default_rng(11)
        steps = random_steps(rng, 3)
        cache.totals(steps, ratio_matrix(rng, 4, 3))
        stats = cache.stats()
        assert stats["store_hits"] == 0
        assert stats["store"]["path"] == store_path
        assert stats["store"]["dead"] is False
        assert stats["misses"] == 4
        cache.close()

    def test_flush_drains_the_write_behind_queue(self, store_path):
        cache = PersistentEstimateCache(
            EstimateCacheStore(store_path, flush_interval_s=3600.0)
        )
        rng = np.random.default_rng(12)
        steps = random_steps(rng, 3)
        cache.totals(steps, ratio_matrix(rng, 6, 3))
        assert cache.flush() + cache.store.rows_flushed >= 6
        assert cache.store.count_rows()[0] == 6
        cache.close()


# ---------------------------------------------------------------------------
# Fork safety (ISSUE 9): a forked child must never touch the inherited
# SQLite connection — the at-fork hook parks it and reopens a fresh one.
# ---------------------------------------------------------------------------
class TestForkSafety:
    @pytest.mark.skipif(not hasattr(os, "fork"), reason="requires os.fork")
    def test_forked_child_reopens_store_and_reads_byte_exact(self, store_path):
        rows = [(f"k{i:03d}".encode(), f"exact{i:03d}".encode(), float(i)) for i in range(50)]
        store = EstimateCacheStore(store_path, flush_interval_s=3600.0)
        store.enqueue_totals(b"fp", rows)
        store.enqueue_estimate(b"fp", b"ek", b"exact-e", '{"x": 1.5}')
        assert store.flush() == 51
        # Leave a pending row the child must NOT inherit: the parent owns it.
        store.enqueue_totals(b"fp", [(b"tail", b"e", 99.0)])

        parent_conn = store._conn
        pid = os.fork()
        if pid == 0:
            # Child: the at-fork hook already ran.  Never let pytest's
            # machinery run in here — report via the exit code only.
            try:
                ok = (
                    store._conn is not parent_conn
                    and store.pending_rows() == 0
                    and store.fetch_totals(b"fp", [k for k, _, _ in rows])
                    == {k: (e, t) for k, e, t in rows}
                    and store.fetch_estimate(b"fp", b"ek") == (b"exact-e", '{"x": 1.5}')
                    and store._flusher.is_alive()
                )
            except BaseException:
                ok = False
            os._exit(0 if ok else 1)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        # The parent is untouched: same connection, pending row still queued.
        assert store._conn is parent_conn
        assert store.pending_rows() == 1
        assert store.flush() == 1
        assert store.fetch_totals(b"fp", [b"tail"]) == {b"tail": (b"e", 99.0)}
        store.close()

    def test_reopen_after_fork_parks_the_old_connection(self, store_path):
        from repro.costmodel import cachestore as cs

        store = EstimateCacheStore(store_path)
        store.enqueue_totals(b"fp", [(b"k", b"e", 1.0)])
        store.flush()
        store.enqueue_totals(b"fp", [(b"pending", b"e", 2.0)])
        old_conn = store._conn
        store._reopen_after_fork()
        # The inherited connection is abandoned, never closed: closing it
        # would roll back a parent transaction through the shared WAL.
        assert old_conn in cs._ABANDONED_CONNS
        assert store._conn is not old_conn
        assert store.pending_rows() == 0  # the parent owns the queued rows
        assert store.fetch_totals(b"fp", [b"k"]) == {b"k": (b"e", 1.0)}
        store.enqueue_totals(b"fp", [(b"k2", b"e", 3.0)])
        assert store.flush() == 1  # the fresh connection writes
        store.close()

    def test_reopen_after_fork_leaves_closed_stores_closed(self, store_path):
        store = EstimateCacheStore(store_path)
        store.close()
        store._reopen_after_fork()  # must not resurrect a closed store
        assert store.fetch_totals(b"fp", [b"k"]) == {}
        assert store.count_rows() == (0, 0)


# ---------------------------------------------------------------------------
# The fail-soft factory.
# ---------------------------------------------------------------------------
class TestOpenPersistentCache:
    def test_happy_path_returns_persistent_cache(self, store_path):
        cache = open_persistent_cache(store_path)
        assert isinstance(cache, PersistentEstimateCache)
        cache.close()

    def test_corrupt_database_falls_back_to_cold_in_memory_cache(self, store_path):
        with open(store_path, "wb") as fh:
            fh.write(b"garbage" * 64)
        errors: list[str] = []
        cache = open_persistent_cache(store_path, on_error=errors.append)
        assert type(cache) is SharedEstimateCache  # cold but functional
        assert len(errors) == 1 and store_path in errors[0]
        rng = np.random.default_rng(13)
        steps = random_steps(rng, 3)
        matrix = ratio_matrix(rng, 4, 3)
        assert np.array_equal(
            cache.totals(steps, matrix), SharedEstimateCache().totals(steps, matrix)
        )

    def test_wrong_schema_falls_back_too(self, store_path):
        EstimateCacheStore(store_path).close()
        conn = sqlite3.connect(store_path)
        conn.execute("UPDATE meta SET value = '999' WHERE key = 'schema_version'")
        conn.commit()
        conn.close()
        cache = open_persistent_cache(store_path)
        assert type(cache) is SharedEstimateCache
