"""Unit tests for repro.data.generator and repro.data.workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DatasetSpec,
    GeneratorError,
    JoinWorkload,
    SKEW_PRESETS,
    build_size_sweep,
    expected_match_count,
    generate_build_relation,
    generate_probe_relation,
    selectivity_sweep,
)
from repro.data.generator import HOT_KEY_DUPLICATES


class TestBuildGenerator:
    def test_uniform_keys_are_unique(self):
        rel = generate_build_relation(5_000, skew=0.0, seed=1)
        assert rel.distinct_key_count() == 5_000

    def test_skew_produces_duplicates(self):
        rel = generate_build_relation(5_000, skew=0.25, seed=1)
        histogram = rel.key_histogram()
        max_multiplicity = max(histogram.values())
        assert max_multiplicity == HOT_KEY_DUPLICATES
        duplicated_tuples = sum(c for c in histogram.values() if c > 1)
        assert duplicated_tuples == pytest.approx(0.25 * 5_000, rel=0.05)

    def test_deterministic_for_seed(self):
        a = generate_build_relation(1_000, seed=3)
        b = generate_build_relation(1_000, seed=3)
        assert np.array_equal(a.keys, b.keys)

    def test_different_seeds_differ(self):
        a = generate_build_relation(1_000, seed=3)
        b = generate_build_relation(1_000, seed=4)
        assert not np.array_equal(a.keys, b.keys)

    def test_invalid_skew_rejected(self):
        with pytest.raises(GeneratorError):
            generate_build_relation(10, skew=1.5)

    def test_negative_size_rejected(self):
        with pytest.raises(GeneratorError):
            generate_build_relation(-1)

    def test_zero_tuples(self):
        rel = generate_build_relation(0)
        assert rel.is_empty()


class TestProbeGenerator:
    def test_full_selectivity_all_match(self):
        build = generate_build_relation(2_000, seed=5)
        probe = generate_probe_relation(build, 3_000, selectivity=1.0, seed=6)
        build_keys = set(build.keys.tolist())
        assert all(k in build_keys for k in probe.keys.tolist())

    def test_selectivity_fraction_matches(self):
        build = generate_build_relation(2_000, seed=5)
        probe = generate_probe_relation(build, 4_000, selectivity=0.25, seed=6)
        build_keys = set(build.keys.tolist())
        matching = sum(1 for k in probe.keys.tolist() if k in build_keys)
        assert matching == pytest.approx(1_000, abs=2)

    def test_zero_selectivity_no_match(self):
        build = generate_build_relation(2_000, seed=5)
        probe = generate_probe_relation(build, 1_000, selectivity=0.0, seed=6)
        assert expected_match_count(build, probe) == 0

    def test_empty_build_with_matches_rejected(self):
        from repro.data import Relation

        with pytest.raises(GeneratorError):
            generate_probe_relation(Relation.empty(), 10, selectivity=1.0)

    def test_invalid_selectivity_rejected(self):
        build = generate_build_relation(100, seed=5)
        with pytest.raises(GeneratorError):
            generate_probe_relation(build, 10, selectivity=2.0)


class TestDatasetSpec:
    def test_paper_default_scaled(self):
        spec = DatasetSpec.paper_default(scale=0.001)
        assert spec.build_tuples == 16_000
        assert spec.probe_tuples == 16_000

    def test_named_skew_presets(self):
        for name, value in SKEW_PRESETS.items():
            spec = DatasetSpec.named_skew(name, 100, 100)
            assert spec.skew == value

    def test_unknown_preset_rejected(self):
        with pytest.raises(GeneratorError):
            DatasetSpec.named_skew("mega-skew", 100, 100)

    def test_generate_returns_requested_sizes(self):
        build, probe = DatasetSpec(build_tuples=500, probe_tuples=700).generate()
        assert len(build) == 500
        assert len(probe) == 700


class TestJoinWorkload:
    def test_uniform_expected_matches_equal_probe_size(self):
        workload = JoinWorkload.uniform(1_000, 2_000, seed=9)
        assert workload.expected_matches() == 2_000

    def test_selectivity_controls_matches(self):
        workload = JoinWorkload.with_selectivity(0.5, 1_000, 2_000, seed=9)
        assert workload.expected_matches() == pytest.approx(1_000, abs=2)

    def test_build_size_sweep_sizes(self):
        sweep = build_size_sweep(probe_tuples=1_000, sizes=(100, 200), seed=1)
        assert [w.build_tuples for w in sweep] == [100, 200]
        assert all(w.probe_tuples == 1_000 for w in sweep)

    def test_selectivity_sweep(self):
        sweep = selectivity_sweep(500, 500, (0.125, 1.0), seed=1)
        assert len(sweep) == 2
        assert sweep[0].spec.selectivity == 0.125

    def test_total_bytes(self):
        workload = JoinWorkload.uniform(100, 200, seed=1)
        assert workload.total_bytes == (100 + 200) * 8
