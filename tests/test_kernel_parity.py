"""Vectorized join-execution kernels: bit-parity suite (ISSUE 5).

Every kernel introduced by the vectorized execution layer keeps its scalar
predecessor as a togglable reference path, and this suite pins the two at
*bit* equality, not tolerance:

* ``HashTable.merge_from`` — the CSR bulk merge produces the identical node
  arrays, chain structure, counters, allocator statistics and returned work
  dict as the per-bucket/per-node reference walk, for duplicate keys,
  single-bucket tables, repeated merges and merge-after-probe states.
* ``final_partition_ids`` / ``execute_partition_phase`` — the fused
  single-hash kernel equals the per-pass loop for every (bits, passes)
  configuration, including allocator accounting.
* ``concat_step_series`` — the columnar fill (with or without a grow-only
  workspace) equals the materialise-and-concatenate reference, including
  the scalar-collapse rules; all-NaN scalars collapse instead of silently
  broadcasting (regression).
* Whole joins — ``PartitionedHashJoin``/``CoarseGrainedPHJ`` runs with
  ``use_kernels=False`` return bit-identical results, step series and work
  totals.
* ``pl_descent_plan(speculation="adaptive")`` — identical plans with
  strictly fewer (or equal) evaluated rows than full speculation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.costmodel import StepCost, optimize_pl, optimize_scheme
from repro.data.relation import Relation
from repro.data.workload import JoinWorkload
from repro.hashjoin import (
    CoarseGrainedPHJ,
    ConcatWorkspace,
    HashJoinConfig,
    HashTable,
    PartitionConfig,
    PartitionedHashJoin,
    bucket_of,
    concat_step_series,
    execute_partition_phase,
    final_partition_ids,
)
from repro.hashjoin.hashtable import HashTableError
from repro.hashjoin.steps import PerTupleWork, StepExecution, StepSeries, step_by_name
from repro.service import PlanRequest, PlanService

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

BUCKET_ARRAYS = ("bucket_tuple_count", "bucket_key_count", "bucket_head", "bucket_tail")
KEY_ARRAYS = (
    "key_node_key",
    "key_node_next",
    "key_node_rid_head",
    "key_node_rid_count",
    "key_node_chain_pos",
    "key_node_bucket",
)
RID_ARRAYS = ("rid_node_rid", "rid_node_next", "rid_node_owner")
WORK_QUANTITIES = (
    "instructions",
    "random_accesses",
    "sequential_bytes",
    "global_atomics",
    "local_atomics",
)


def build_table(keys, n_buckets, start_rid=0) -> HashTable:
    keys = np.asarray(keys, dtype=np.int64)
    table = HashTable(n_buckets=n_buckets)
    if keys.size:
        table.bulk_insert(
            keys,
            np.arange(start_rid, start_rid + keys.size, dtype=np.int64),
            bucket_of(keys, n_buckets),
        )
    return table


def assert_tables_identical(a: HashTable, b: HashTable) -> None:
    assert a.n_key_nodes == b.n_key_nodes
    assert a.n_rid_nodes == b.n_rid_nodes
    for name in BUCKET_ARRAYS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name
    for name in KEY_ARRAYS:
        assert np.array_equal(
            getattr(a, name)[: a.n_key_nodes], getattr(b, name)[: b.n_key_nodes]
        ), name
    for name in RID_ARRAYS:
        assert np.array_equal(
            getattr(a, name)[: a.n_rid_nodes], getattr(b, name)[: b.n_rid_nodes]
        ), name
    assert a.allocator.stats.__dict__ == b.allocator.stats.__dict__
    assert np.array_equal(a.latches.acquisitions, b.latches.acquisitions)


def assert_work_equal(a, b) -> None:
    """Bit-equality of two per-tuple quantities incl. scalar-vs-array kind."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        assert isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
        assert np.array_equal(a, b, equal_nan=True)
    else:
        assert (a == b) or (np.isnan(a) and np.isnan(b))


def assert_series_equal(a: StepSeries, b: StepSeries) -> None:
    assert a.phase == b.phase
    assert a.step_names == b.step_names
    for ea, eb in zip(a, b):
        assert ea.n_tuples == eb.n_tuples
        assert ea.conflict_ratio == eb.conflict_ratio
        assert ea.intermediate_bytes_per_tuple == eb.intermediate_bytes_per_tuple
        assert ea.grouped == eb.grouped
        for name in WORK_QUANTITIES:
            assert_work_equal(getattr(ea.work, name), getattr(eb.work, name))


# ---------------------------------------------------------------------------
# CSR bulk merge vs the per-bucket/per-node reference walk
# ---------------------------------------------------------------------------
class TestMergeParity:
    @SETTINGS
    @given(
        n_a=st.integers(0, 300),
        n_b=st.integers(1, 300),
        key_space=st.integers(1, 60),
        bucket_bits=st.integers(0, 6),
        seed=st.integers(0, 10_000),
    )
    def test_merge_matches_reference(self, n_a, n_b, key_space, bucket_bits, seed):
        rng = np.random.default_rng(seed)
        n_buckets = 1 << bucket_bits
        keys_a = rng.integers(0, key_space, size=n_a)
        keys_b = rng.integers(0, key_space, size=n_b)

        bulk_self = build_table(keys_a, n_buckets)
        bulk_other = build_table(keys_b, n_buckets, start_rid=10_000)
        ref_self = build_table(keys_a, n_buckets)
        ref_other = build_table(keys_b, n_buckets, start_rid=10_000)

        stats_bulk = bulk_self.merge_from(bulk_other)
        stats_ref = ref_self.merge_from(ref_other, use_bulk=False)

        assert stats_bulk == stats_ref
        assert_tables_identical(bulk_self, ref_self)
        bulk_self.validate()
        ref_self.validate(use_bulk=False)

        # Subsequent probes must come out bit-identical too (rid list order
        # is part of the merge contract).
        probe_keys = rng.integers(0, key_space, size=64)
        probe_rids = np.arange(64, dtype=np.int64)
        buckets = bucket_of(probe_keys, n_buckets)
        result_bulk, work_bulk = bulk_self.bulk_probe(probe_keys, probe_rids, buckets)
        result_ref, work_ref = ref_self.bulk_probe(probe_keys, probe_rids, buckets)
        assert np.array_equal(result_bulk.build_rids, result_ref.build_rids)
        assert np.array_equal(result_bulk.probe_rids, result_ref.probe_rids)
        assert np.array_equal(work_bulk.key_nodes_visited, work_ref.key_nodes_visited)
        assert np.array_equal(work_bulk.matches, work_ref.matches)

    def test_merge_work_dict_accounts_other_table(self):
        table = build_table(np.array([1, 2, 3, 1]), 8)
        other = build_table(np.array([2, 2, 9]), 8, start_rid=100)
        stats = table.merge_from(other)
        assert stats == {
            "key_nodes": 2.0,
            "rid_nodes": 3.0,
            "bytes": float(2 * 16 + 3 * 8),
        }

    def test_merge_empty_other_is_free(self):
        table = build_table(np.arange(10), 8)
        empty = HashTable(n_buckets=8)
        assert table.merge_from(empty) == {
            "key_nodes": 0.0,
            "rid_nodes": 0.0,
            "bytes": 0.0,
        }
        assert table.n_rid_nodes == 10

    def test_merge_into_empty_self(self):
        other = build_table(np.array([5, 5, 7]), 4)
        bulk = HashTable(n_buckets=4)
        ref = HashTable(n_buckets=4)
        other_ref = build_table(np.array([5, 5, 7]), 4)
        bulk.merge_from(other)
        ref.merge_from(other_ref, use_bulk=False)
        assert_tables_identical(bulk, ref)

    def test_single_bucket_table(self):
        keys = np.array([3, 1, 3, 2, 1, 1])
        bulk_self, ref_self = build_table(keys, 1), build_table(keys, 1)
        bulk_other = build_table(keys[::-1].copy(), 1, start_rid=50)
        ref_other = build_table(keys[::-1].copy(), 1, start_rid=50)
        assert bulk_self.merge_from(bulk_other) == ref_self.merge_from(
            ref_other, use_bulk=False
        )
        assert_tables_identical(bulk_self, ref_self)

    def test_repeated_merges_and_merge_after_probe(self):
        rng = np.random.default_rng(7)
        keys = [rng.integers(0, 40, size=120) for _ in range(3)]
        bulk = build_table(keys[0], 16)
        ref = build_table(keys[0], 16)
        for i, batch in enumerate(keys[1:], start=1):
            bulk_other = build_table(batch, 16, start_rid=1000 * i)
            ref_other = build_table(batch, 16, start_rid=1000 * i)
            if i == 2:
                # A probe cleans the CSR view; merging afterwards must not
                # change anything.
                probe = rng.integers(0, 40, size=30)
                bulk_other.bulk_probe(probe, np.arange(30), bucket_of(probe, 16))
            bulk.merge_from(bulk_other)
            ref.merge_from(ref_other, use_bulk=False)
        assert_tables_identical(bulk, ref)
        bulk.validate()

    def test_merge_rejects_mismatched_bucket_counts(self):
        with pytest.raises(HashTableError):
            build_table(np.arange(4), 8).merge_from(build_table(np.arange(4), 16))


class TestVectorizedValidate:
    def test_valid_tables_pass_both_modes(self):
        table = build_table(np.random.default_rng(0).integers(0, 50, 200), 16)
        table.validate()
        table.validate(use_bulk=False)

    @pytest.mark.parametrize("use_bulk", [True, False])
    def test_broken_next_pointer_raises(self, use_bulk):
        table = build_table(np.arange(64), 4)  # long chains per bucket
        node = int(table.bucket_head[0])
        table.key_node_next[node] = node  # cycle / broken chain
        with pytest.raises(HashTableError):
            table.validate(use_bulk=use_bulk)

    @pytest.mark.parametrize("use_bulk", [True, False])
    def test_wrong_bucket_key_count_raises(self, use_bulk):
        table = build_table(np.arange(32), 8)
        table.bucket_key_count[0] += 1
        table.bucket_key_count[1] -= 1  # keep the sum intact
        with pytest.raises(HashTableError):
            table.validate(use_bulk=use_bulk)

    @pytest.mark.parametrize("use_bulk", [True, False])
    def test_unreachable_head_raises(self, use_bulk):
        table = build_table(np.arange(32), 8)
        busy = int(np.argmax(table.bucket_key_count))
        table.bucket_head[busy] = -1
        with pytest.raises(HashTableError):
            table.validate(use_bulk=use_bulk)


# ---------------------------------------------------------------------------
# Fused radix partitioning vs the per-pass loop
# ---------------------------------------------------------------------------
class TestPartitionParity:
    @SETTINGS
    @given(
        n=st.integers(0, 500),
        bits=st.integers(1, 8),
        passes=st.integers(1, 3),
        seed=st.integers(0, 10_000),
    )
    def test_final_partition_ids_fused_equals_loop(self, n, bits, passes, seed):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, np.iinfo(np.uint32).max, size=n, dtype=np.int64)
        config = PartitionConfig(bits_per_pass=bits, n_passes=passes)
        fused = final_partition_ids(keys, config, fused=True)
        loop = final_partition_ids(keys, config, fused=False)
        assert fused.dtype == loop.dtype == np.int64
        assert np.array_equal(fused, loop)

    @pytest.mark.parametrize("n_passes,bits", [(1, 6), (2, 4), (3, 8), (6, 4)])
    def test_partition_phase_fused_equals_reference(self, n_passes, bits):
        workload = JoinWorkload.uniform(2_000, 3_000, seed=11)
        config = PartitionConfig(bits_per_pass=bits, n_passes=n_passes)
        join_config = HashJoinConfig()

        outcomes = {}
        allocators = {}
        for fused in (True, False):
            allocator = join_config.make_allocator(1 << 24)
            outcomes[fused] = execute_partition_phase(
                workload.build, workload.probe, config, join_config, allocator,
                fused=fused,
            )
            allocators[fused] = allocator

        assert allocators[True].stats.__dict__ == allocators[False].stats.__dict__
        assert np.array_equal(
            outcomes[True].build_partitions.partition_ids,
            outcomes[False].build_partitions.partition_ids,
        )
        assert np.array_equal(
            outcomes[True].probe_partitions.partition_ids,
            outcomes[False].probe_partitions.partition_ids,
        )
        for series_fused, series_ref in zip(
            outcomes[True].series_per_pass, outcomes[False].series_per_pass
        ):
            assert_series_equal(series_fused, series_ref)
            for execution_fused, execution_ref in zip(series_fused, series_ref):
                ws_fused, ws_ref = execution_fused.working_set, execution_ref.working_set
                assert (ws_fused is None) == (ws_ref is None)
                if ws_fused is not None:
                    assert ws_fused.bytes == ws_ref.bytes

    def test_empty_relations(self):
        empty = Relation(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        config = PartitionConfig(bits_per_pass=2, n_passes=2)
        join_config = HashJoinConfig()
        for fused in (True, False):
            outcome = execute_partition_phase(
                empty, empty, config, join_config, join_config.make_allocator(1 << 20),
                fused=fused,
            )
            assert outcome.series_per_pass[0].n_tuples == 0
            assert outcome.build_partitions.partition_ids.size == 0

    def test_partition_sizes_bincount(self):
        workload = JoinWorkload.uniform(1_000, 1_000, seed=3)
        config = PartitionConfig(bits_per_pass=4, n_passes=1)
        ids = final_partition_ids(workload.build.keys, config)
        from repro.hashjoin import PartitionSet

        sizes = PartitionSet(workload.build, ids, config).partition_sizes()
        assert sizes.sum() == len(workload.build)
        assert sizes.shape == (config.n_partitions,)
        reference = np.zeros(config.n_partitions, dtype=np.int64)
        np.add.at(reference, ids, 1)
        assert np.array_equal(sizes, reference)


# ---------------------------------------------------------------------------
# Columnar step-series concatenation vs the reference concatenate
# ---------------------------------------------------------------------------
def synthetic_series(rng: np.random.Generator, lengths, nan_mode=None) -> list[StepSeries]:
    """One single-step series per 'pair', with a random scalar/array mix."""
    series = []
    shared_scalar = float(rng.uniform(0.0, 8.0))
    for length in lengths:
        quantities = {}
        for name in WORK_QUANTITIES:
            choice = rng.integers(0, 3)
            if nan_mode == "all" and name == "instructions":
                quantities[name] = float("nan")
            elif nan_mode == "mixed" and name == "instructions":
                quantities[name] = float("nan") if rng.integers(0, 2) else 1.5
            elif choice == 0:
                quantities[name] = shared_scalar  # collapsible across pairs
            elif choice == 1:
                quantities[name] = float(rng.uniform(0.0, 4.0))
            else:
                quantities[name] = rng.uniform(0.0, 4.0, size=length)
        work = PerTupleWork(n_tuples=length, **quantities)
        series.append(
            StepSeries(
                phase="probe",
                executions=[
                    StepExecution(
                        step=step_by_name("p3"),
                        work=work,
                        working_set=None,
                        conflict_ratio={"cpu": float(rng.uniform(0, 0.1)), "gpu": 0.0},
                    )
                ],
            )
        )
    return series


class TestConcatParity:
    @SETTINGS
    @given(
        lengths=st.lists(st.integers(0, 40), min_size=1, max_size=8),
        nan_mode=st.sampled_from([None, "all", "mixed"]),
        use_workspace=st.booleans(),
        seed=st.integers(0, 10_000),
    )
    def test_columnar_equals_reference(self, lengths, nan_mode, use_workspace, seed):
        rng = np.random.default_rng(seed)
        series = synthetic_series(rng, lengths, nan_mode)
        workspace = ConcatWorkspace() if use_workspace else None
        columnar = concat_step_series(
            series, "probe", None, columnar=True, workspace=workspace
        )
        reference = concat_step_series(series, "probe", None, columnar=False)
        assert_series_equal(columnar, reference)

    def test_all_nan_scalars_collapse(self):
        """Regression: NaN != NaN used to force a full-array broadcast."""
        rng = np.random.default_rng(0)
        series = synthetic_series(rng, [5, 7], nan_mode="all")
        for columnar in (True, False):
            merged = concat_step_series(series, "probe", None, columnar=columnar)
            value = merged[0].work.instructions
            assert not isinstance(value, np.ndarray)
            assert np.isnan(value)

    def test_mixed_nan_scalars_broadcast(self):
        rng = np.random.default_rng(1)
        lengths = [4, 6]
        series = synthetic_series(rng, lengths)
        series[0][0].work.instructions = float("nan")
        series[1][0].work.instructions = 2.0
        for columnar in (True, False):
            merged = concat_step_series(series, "probe", None, columnar=columnar)
            value = merged[0].work.instructions
            assert isinstance(value, np.ndarray)
            assert np.all(np.isnan(value[:4])) and np.all(value[4:] == 2.0)

    def test_workspace_buffers_are_reused(self):
        rng = np.random.default_rng(2)
        workspace = ConcatWorkspace()
        first = workspace.buffer("probe", 0, 0, 64)
        base = first.base if first.base is not None else first
        again = workspace.buffer("probe", 0, 0, 32)
        assert (again.base if again.base is not None else again) is base
        # Growing reallocates, geometrically.
        grown = workspace.buffer("probe", 0, 0, 65)
        assert grown.shape[0] == 65
        assert (grown.base if grown.base is not None else grown) is not base


# ---------------------------------------------------------------------------
# Whole joins with kernels on/off
# ---------------------------------------------------------------------------
class TestJoinParity:
    @pytest.mark.parametrize(
        "partition_config",
        [PartitionConfig(bits_per_pass=4, n_passes=1),
         PartitionConfig(bits_per_pass=3, n_passes=2)],
    )
    def test_phj_run_bit_identical(self, partition_config):
        workload = JoinWorkload.skewed("high-skew", 4_000, 6_000, seed=5)
        runs = {}
        for use_kernels in (True, False):
            runs[use_kernels] = PartitionedHashJoin(
                partition_config=partition_config, use_kernels=use_kernels
            ).run(workload.build, workload.probe)
        vec, ref = runs[True], runs[False]
        assert np.array_equal(vec.result.build_rids, ref.result.build_rids)
        assert np.array_equal(vec.result.probe_rids, ref.result.probe_rids)
        assert vec.max_pair_table_bytes == ref.max_pair_table_bytes
        for series_vec, series_ref in zip(vec.step_series, ref.step_series):
            assert_series_equal(series_vec, series_ref)

    def test_phj_workspace_reuse_across_runs(self):
        workload = JoinWorkload.uniform(2_000, 2_000, seed=9)
        workspace = ConcatWorkspace()
        join = PartitionedHashJoin(
            partition_config=PartitionConfig(bits_per_pass=4, n_passes=1),
            concat_workspace=workspace,
        )
        reference = PartitionedHashJoin(
            partition_config=PartitionConfig(bits_per_pass=4, n_passes=1),
            use_kernels=False,
        )
        # Consume each run fully before the next one (the workspace contract).
        for _ in range(2):
            run = join.run(workload.build, workload.probe)
            ref = reference.run(workload.build, workload.probe)
            for series_vec, series_ref in zip(run.step_series, ref.step_series):
                assert_series_equal(series_vec, series_ref)

    def test_coarse_phj_bit_identical(self):
        workload = JoinWorkload.uniform(3_000, 3_000, seed=13)
        runs = {
            use_kernels: CoarseGrainedPHJ(
                partition_config=PartitionConfig(bits_per_pass=4, n_passes=1),
                use_kernels=use_kernels,
            ).run(workload.build, workload.probe)
            for use_kernels in (True, False)
        }
        vec, ref = runs[True], runs[False]
        assert np.array_equal(vec.result.build_rids, ref.result.build_rids)
        assert np.array_equal(vec.result.probe_rids, ref.result.probe_rids)
        assert vec.total_table_bytes == ref.total_table_bytes
        assert_series_equal(vec.pair_series, ref.pair_series)


# ---------------------------------------------------------------------------
# Adaptive PL descent speculation
# ---------------------------------------------------------------------------
def random_step_costs(rng: np.random.Generator, n: int) -> list[StepCost]:
    return [
        StepCost(
            f"s{i}",
            int(rng.integers(10_000, 250_000)),
            cpu_unit_s=float(rng.uniform(1e-9, 5e-8)),
            gpu_unit_s=float(rng.uniform(1e-9, 5e-8)),
            intermediate_bytes_per_tuple=8.0,
        )
        for i in range(n)
    ]


class TestAdaptiveSpeculation:
    @SETTINGS
    @given(n=st.integers(4, 10), seed=st.integers(0, 10_000))
    def test_adaptive_plans_identical_with_fewer_rows(self, n, seed):
        steps = random_step_costs(np.random.default_rng(seed), n)
        full = optimize_pl(steps, speculation="full")
        adaptive = optimize_pl(steps, speculation="adaptive")
        assert adaptive.ratios == full.ratios
        assert adaptive.total_s == full.total_s
        assert adaptive.stats["rounds"] == full.stats["rounds"]
        assert adaptive.stats["accepts"] == full.stats["accepts"]
        assert adaptive.stats["speculation"] == "adaptive"
        assert adaptive.evaluations <= full.evaluations

    def test_accept_heavy_first_round_drops_rows(self):
        rows = {"full": 0, "adaptive": 0}
        rng = np.random.default_rng(2013)
        for _ in range(8):
            steps = random_step_costs(rng, 8)
            for mode in rows:
                rows[mode] += optimize_pl(steps, speculation=mode).evaluations
        assert rows["adaptive"] < 0.9 * rows["full"]

    def test_unknown_speculation_mode_rejected(self):
        from repro.costmodel.optimizer import OptimizerError, pl_descent_plan

        steps = random_step_costs(np.random.default_rng(0), 4)
        with pytest.raises(OptimizerError):
            next(pl_descent_plan(steps, speculation="bogus"))

    def test_service_adaptive_answers_bit_identical(self):
        rng = np.random.default_rng(5)
        requests = [
            PlanRequest(
                request_id=f"r{i}",
                scheme="PL",
                steps=tuple(random_step_costs(rng, 6)),
                delta=0.05,
            )
            for i in range(4)
        ]
        adaptive = PlanService(speculation="adaptive").plan_many(requests)
        for request, response in zip(requests, adaptive):
            reference = optimize_scheme("PL", list(request.steps), delta=request.delta)
            assert response.ratios == reference.ratios
            assert response.estimate.total_s == reference.estimate.total_s
