"""Unit tests for repro.data.relation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Relation, RelationError, TUPLE_BYTES


def make_relation(n: int = 10) -> Relation:
    return Relation(keys=np.arange(n) * 3, rids=np.arange(n), name="R")


class TestConstruction:
    def test_basic_lengths(self):
        rel = make_relation(10)
        assert len(rel) == 10
        assert rel.cardinality == 10
        assert rel.nbytes == 10 * TUPLE_BYTES

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(RelationError):
            Relation(keys=np.arange(5), rids=np.arange(4))

    def test_two_dimensional_rejected(self):
        with pytest.raises(RelationError):
            Relation(keys=np.ones((2, 2)), rids=np.ones((2, 2)))

    def test_from_keys_assigns_sequential_rids(self):
        rel = Relation.from_keys(np.array([5, 7, 9]))
        assert rel.rids.tolist() == [0, 1, 2]

    def test_empty(self):
        rel = Relation.empty()
        assert rel.is_empty()
        assert len(rel) == 0

    def test_dtype_coercion_to_int64(self):
        rel = Relation(keys=np.array([1, 2], dtype=np.int32), rids=np.array([0, 1], dtype=np.int16))
        assert rel.keys.dtype == np.int64
        assert rel.rids.dtype == np.int64


class TestSlicing:
    def test_slice_returns_range(self):
        rel = make_relation(10)
        part = rel.slice(2, 5)
        assert part.keys.tolist() == [6, 9, 12]
        assert part.rids.tolist() == [2, 3, 4]

    def test_take(self):
        rel = make_relation(10)
        part = rel.take(np.array([0, 9]))
        assert part.rids.tolist() == [0, 9]

    def test_split_by_ratio_partitions_everything(self):
        rel = make_relation(10)
        left, right = rel.split_by_ratio(0.3)
        assert len(left) == 3
        assert len(right) == 7
        assert np.array_equal(np.concatenate([left.keys, right.keys]), rel.keys)

    @pytest.mark.parametrize("ratio", [0.0, 1.0])
    def test_split_by_ratio_extremes(self, ratio):
        rel = make_relation(10)
        left, right = rel.split_by_ratio(ratio)
        assert len(left) + len(right) == 10
        assert len(left) == int(round(10 * ratio))

    def test_split_by_ratio_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            make_relation().split_by_ratio(1.5)

    def test_split_chunks_covers_relation(self):
        rel = make_relation(10)
        chunks = rel.split_chunks(3)
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert np.array_equal(np.concatenate([c.rids for c in chunks]), rel.rids)

    def test_split_chunks_rejects_non_positive(self):
        with pytest.raises(ValueError):
            make_relation().split_chunks(0)

    def test_concat_preserves_order(self):
        a, b = make_relation(3), make_relation(2)
        merged = Relation.concat([a, b])
        assert len(merged) == 5
        assert merged.keys[:3].tolist() == a.keys.tolist()


class TestStatistics:
    def test_distinct_and_duplicates(self):
        rel = Relation(keys=np.array([1, 1, 2, 3]), rids=np.arange(4))
        assert rel.distinct_key_count() == 3
        assert rel.average_duplicates_per_key() == pytest.approx(4 / 3)

    def test_key_histogram(self):
        rel = Relation(keys=np.array([1, 1, 2]), rids=np.arange(3))
        assert rel.key_histogram() == {1: 2, 2: 1}

    def test_empty_statistics(self):
        rel = Relation.empty()
        assert rel.distinct_key_count() == 0
        assert rel.average_duplicates_per_key() == 0.0
