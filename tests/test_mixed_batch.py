"""Mixed-series batch engine + vectorized PL descent: property and
regression suite (ISSUE 3).

Three claims are pinned here, all at bit-exactness rather than tolerance:

* ``batch_totals_mixed`` over any mixture of step series — duplicate
  fingerprints, different series lengths, single-row segments, degenerate
  all-zero/all-one ratio rows — equals per-series ``batch_totals`` row for
  row (the padded lanes only ever add exact ``+0.0`` terms).
* ``EstimateCache.totals_mixed`` keys every row under its own fingerprint
  (hits/misses/LRU account as if ``totals`` had been called per segment)
  and near-equal ratio vectors that collide at the rounding quantum are
  re-verified against their exact bytes instead of aliasing.
* The vectorized PL coordinate descent returns the same plans and totals as
  the scalar reference path, in at most one engine call per descent round
  plus one per accepted update — and the mixed plan service inherits both
  properties in lockstep.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.costmodel import (
    EstimateCache,
    SeriesEvaluator,
    SharedEstimateCache,
    StepCost,
    batch_totals,
    batch_totals_mixed,
    estimate_series,
    mixed_matrices,
    optimize_pl,
    optimize_scheme,
    steps_fingerprint,
)
from repro.service import PlanRequest, PlanService

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TOL = 1e-12


def random_steps(rng: np.random.Generator, n: int) -> tuple[StepCost, ...]:
    return tuple(
        StepCost(
            f"s{i}",
            int(rng.integers(0, 200_000)),
            cpu_unit_s=float(rng.uniform(0.0, 5e-8)),
            gpu_unit_s=float(rng.uniform(0.0, 5e-8)),
            intermediate_bytes_per_tuple=float(rng.uniform(0.0, 16.0)),
        )
        for i in range(n)
    )


def random_mixture(
    seed: int, n_segments: int, pool_size: int
) -> list[tuple[tuple[StepCost, ...], np.ndarray]]:
    """Segments drawing from a small series pool (duplicate fingerprints on
    purpose), with single-row batches and all-zero/all-one rows mixed in."""
    rng = np.random.default_rng(seed)
    pool = [random_steps(rng, int(rng.integers(1, 9))) for _ in range(pool_size)]
    segments = []
    for _ in range(n_segments):
        steps = pool[int(rng.integers(0, pool_size))]
        rows = int(rng.integers(1, 8))
        matrix = rng.uniform(0.0, 1.0, size=(rows, len(steps)))
        for i in range(rows):
            draw = rng.uniform()
            if draw < 0.15:
                matrix[i] = 0.0  # degenerate: everything on the GPU
            elif draw < 0.3:
                matrix[i] = 1.0  # degenerate: everything on the CPU
        segments.append((steps, matrix))
    return segments


class TestMixedBatchEquivalence:
    @SETTINGS
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=3),
    )
    def test_random_mixtures_bit_match_per_series(self, seed, n_segments, pool):
        segments = random_mixture(seed, n_segments, pool)
        mixed = batch_totals_mixed(segments)
        reference = np.concatenate(
            [batch_totals(list(steps), matrix) for steps, matrix in segments]
        )
        assert np.array_equal(mixed, reference)

    @SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_rows_match_scalar_reference(self, seed):
        segments = random_mixture(seed, 3, 2)
        totals = batch_totals_mixed(segments)
        i = 0
        for steps, matrix in segments:
            for row in matrix:
                scalar = estimate_series(list(steps), row.tolist()).total_s
                assert totals[i] == pytest.approx(scalar, abs=TOL, rel=TOL)
                i += 1

    def test_single_row_segments(self):
        rng = np.random.default_rng(3)
        segments = [
            (random_steps(rng, n), rng.uniform(0.0, 1.0, size=(1, n)))
            for n in (1, 4, 8)
        ]
        mixed = batch_totals_mixed(segments)
        for (steps, matrix), total in zip(segments, mixed):
            assert total == batch_totals(list(steps), matrix)[0]

    def test_duplicate_fingerprints_and_duplicate_rows(self):
        rng = np.random.default_rng(4)
        steps = random_steps(rng, 5)
        matrix = rng.uniform(0.0, 1.0, size=(6, 5))
        segments = [(steps, matrix), (steps, matrix[:3])]
        mixed = batch_totals_mixed(segments)
        reference = batch_totals(list(steps), matrix)
        assert np.array_equal(mixed[:6], reference)
        assert np.array_equal(mixed[6:], reference[:3])

    def test_empty_series_segment_contributes_zero_totals(self):
        rng = np.random.default_rng(5)
        steps = random_steps(rng, 4)
        segments = [
            (steps, rng.uniform(0.0, 1.0, size=(2, 4))),
            ((), np.zeros((3, 0))),
        ]
        mixed = batch_totals_mixed(segments)
        assert np.array_equal(mixed[:2], batch_totals(list(steps), segments[0][1]))
        assert np.all(mixed[2:] == 0.0)

    def test_empty_segment_list(self):
        assert batch_totals_mixed([]).shape == (0,)

    def test_zero_row_segment(self):
        rng = np.random.default_rng(6)
        steps = random_steps(rng, 3)
        segments = [
            (steps, np.zeros((0, 3))),
            (steps, rng.uniform(0.0, 1.0, size=(2, 3))),
        ]
        mixed = batch_totals_mixed(segments)
        assert np.array_equal(mixed, batch_totals(list(steps), segments[1][1]))

    def test_validation_on_by_default(self):
        steps = random_steps(np.random.default_rng(7), 2)
        with pytest.raises(Exception):
            batch_totals_mixed([(steps, np.full((1, 2), 1.5))])

    def test_padding_structure(self):
        """Short rows are padded with their last ratio and zero coefficients."""
        rng = np.random.default_rng(8)
        short = random_steps(rng, 2)
        long = random_steps(rng, 5)
        short_matrix = rng.uniform(0.0, 1.0, size=(3, 2))
        long_matrix = rng.uniform(0.0, 1.0, size=(2, 5))
        R, cpu_coeff, gpu_coeff = mixed_matrices(
            [(short, short_matrix), (long, long_matrix)]
        )
        assert R.shape == (5, 5)
        assert np.array_equal(R[:3, :2], short_matrix)
        # Padded ratio columns repeat the last real ratio (no Eq. 4/5 stall).
        for pad_col in range(2, 5):
            assert np.array_equal(R[:3, pad_col], short_matrix[:, 1])
        assert np.all(cpu_coeff[:3, 2:] == 0.0)
        assert np.all(gpu_coeff[:3, 2:] == 0.0)
        assert np.array_equal(R[3:], long_matrix)


class TestCacheTotalsMixed:
    @SETTINGS
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=5),
    )
    def test_matches_per_segment_totals(self, seed, n_segments):
        segments = random_mixture(seed, n_segments, 2)
        mixed_cache = EstimateCache()
        split_cache = EstimateCache()
        mixed = mixed_cache.totals_mixed(segments)
        reference = np.concatenate(
            [split_cache.totals(list(steps), matrix) for steps, matrix in segments]
        )
        assert np.array_equal(mixed, reference)
        total_rows = sum(matrix.shape[0] for _, matrix in segments)
        assert mixed_cache.hits + mixed_cache.misses == total_rows
        assert split_cache.hits + split_cache.misses == total_rows
        # One mixed call probes every segment before inserting anything, so a
        # row duplicated across two segments of the same call misses twice
        # where sequential per-segment calls would hit on the second; the
        # stored entries (and of course the totals) are identical either way.
        assert mixed_cache.misses >= split_cache.misses
        assert len(mixed_cache) == len(split_cache)
        # A replay of the whole mixture is answered without the engine.
        misses = mixed_cache.misses
        replay = mixed_cache.totals_mixed(segments)
        assert np.array_equal(replay, mixed)
        assert mixed_cache.misses == misses

    def test_partial_hits_across_fingerprints(self):
        rng = np.random.default_rng(11)
        a = random_steps(rng, 3)
        b = random_steps(rng, 6)
        matrix_a = rng.uniform(0.0, 1.0, size=(4, 3))
        matrix_b = rng.uniform(0.0, 1.0, size=(5, 6))
        cache = EstimateCache()
        cache.totals(list(a), matrix_a[:2])  # warm up 2 rows (2 misses)
        out = cache.totals_mixed([(a, matrix_a), (b, matrix_b)])
        assert cache.hits == 2
        assert cache.misses == 2 + 2 + 5  # warm-up + a's cold rows + all of b
        assert np.array_equal(out[:4], batch_totals(list(a), matrix_a))
        assert np.array_equal(out[4:], batch_totals(list(b), matrix_b))

    def test_rows_keyed_per_fingerprint_not_per_call(self):
        """Identical ratio rows of different series must not alias."""
        rng = np.random.default_rng(12)
        a = random_steps(rng, 4)
        b = random_steps(rng, 4)
        assert steps_fingerprint(a) != steps_fingerprint(b)
        matrix = rng.uniform(0.0, 1.0, size=(3, 4))
        cache = EstimateCache()
        out = cache.totals_mixed([(a, matrix), (b, matrix)])
        assert np.array_equal(out[:3], batch_totals(list(a), matrix))
        assert np.array_equal(out[3:], batch_totals(list(b), matrix))
        assert cache.misses == 6  # same rows, two fingerprints, no aliasing

    def test_lru_eviction_still_bounded(self):
        rng = np.random.default_rng(13)
        pool = [random_steps(rng, 2) for _ in range(4)]
        cache = EstimateCache(max_entries=10)
        for k in range(4):
            cache.totals_mixed([(pool[k], rng.uniform(0.0, 1.0, size=(6, 2)))])
            assert len(cache) <= 10

    def test_shared_cache_thread_safe_mixed(self):
        from concurrent.futures import ThreadPoolExecutor

        rng = np.random.default_rng(14)
        segments = random_mixture(15, 4, 2)
        cache = SharedEstimateCache()
        reference = np.concatenate(
            [batch_totals(list(steps), matrix) for steps, matrix in segments]
        )

        def worker(_):
            return cache.totals_mixed(segments)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(worker, range(16)))
        for out in results:
            assert np.array_equal(out, reference)
        total_rows = sum(matrix.shape[0] for _, matrix in segments)
        assert cache.hits + cache.misses == 16 * total_rows
        assert cache.misses == total_rows  # coarse lock: computed exactly once


class TestRoundingCollisionRegression:
    """Near-equal ratios that collide at ``decimals`` places must not alias.

    The cache quantises row keys to 12 decimal places; two vectors closer
    than the quantum land on the same rounded key.  Entries therefore store
    the exact row bytes and every hit re-verifies them, so the second vector
    is recomputed instead of being served its neighbour's total.
    """

    def test_colliding_rows_get_their_own_totals(self):
        steps = list(random_steps(np.random.default_rng(20), 3))
        base = np.array([[0.5, 0.25, 0.75]])
        nudged = base + 2e-13  # rounds to the same 12-decimal key
        assert np.array_equal(np.round(base, 12), np.round(nudged, 12))
        cache = EstimateCache()
        first = cache.totals(steps, base)
        second = cache.totals(steps, nudged)
        assert first[0] == batch_totals(steps, base)[0]
        assert second[0] == batch_totals(steps, nudged)[0]
        assert cache.misses == 2  # the collision is detected, not served

    def test_colliding_rows_within_one_mixed_call(self):
        steps = list(random_steps(np.random.default_rng(21), 2))
        base = np.array([[0.5, 0.5]])
        nudged = base + 2e-13
        cache = EstimateCache()
        out = cache.totals_mixed([(tuple(steps), np.vstack([base, nudged]))])
        assert out[0] == batch_totals(steps, base)[0]
        assert out[1] == batch_totals(steps, nudged)[0]

    def test_colliding_estimates_recomputed(self):
        steps = list(random_steps(np.random.default_rng(22), 2))
        cache = EstimateCache()
        first = cache.estimate(steps, [0.5, 0.5])
        second = cache.estimate(steps, [0.5 + 2e-13, 0.5])
        assert first.ratios == [0.5, 0.5]
        assert second.ratios == [0.5 + 2e-13, 0.5]
        assert cache.misses == 2

    def test_boundary_crossing_neighbours_stay_distinct_keys(self):
        """Vectors straddling a rounding boundary get distinct keys (the
        pre-existing behaviour) — still correct, just two entries."""
        steps = list(random_steps(np.random.default_rng(23), 1))
        low, high = 0.4999999999994, 0.5000000000006
        assert np.round(low, 12) != np.round(high, 12)
        cache = EstimateCache()
        cache.totals(steps, [[low]])
        cache.totals(steps, [[high]])
        assert cache.misses == 2
        assert len(cache) == 2


#: Seed workloads for the descent regression: the 8-step SHJ-like series of
#: the optimizer benchmark plus assorted shapes that exercise every start.
def seed_workloads() -> list[list[StepCost]]:
    workloads = []
    for seed, n in ((2013, 8), (7, 5), (11, 3), (29, 1), (41, 6)):
        rng = np.random.default_rng(seed)
        workloads.append(
            [
                StepCost(
                    f"s{i}",
                    int(rng.integers(50_000, 250_000)),
                    cpu_unit_s=float(rng.uniform(2e-9, 2e-8)),
                    gpu_unit_s=float(rng.uniform(1e-9, 2e-8)),
                    intermediate_bytes_per_tuple=8.0,
                )
                for i in range(n)
            ]
        )
    return workloads


class TestVectorizedDescentRegression:
    def test_seed_workloads_bit_match_scalar_reference(self):
        for steps in seed_workloads():
            for delta in (0.02, 0.1):
                batched = optimize_pl(steps, delta=delta)
                scalar = optimize_pl(steps, delta=delta, use_batch=False)
                assert batched.ratios == scalar.ratios
                assert batched.total_s == scalar.total_s
                assert batched.estimate.cpu_step_s == scalar.estimate.cpu_step_s
                assert batched.estimate.gpu_delay_s == scalar.estimate.gpu_delay_s

    def test_at_most_one_engine_call_per_descent_round(self):
        """Counter proof: calls ≤ preliminary grids + rounds + accepts.

        Every descent round costs one engine call unless an accepted update
        forces a re-batch of the remaining coordinates — so the call count
        is bounded by one per round plus one per accepted update, across
        the slowest start (starts advance in lockstep).
        """
        for steps in seed_workloads():
            evaluator = SeriesEvaluator(steps)
            result = optimize_pl(steps, evaluator=evaluator)
            stats = result.stats
            assert evaluator.engine_calls == stats["engine_yields"]
            preliminary = 1 + (1 if len(steps) <= 3 else 0)
            per_start_bound = max(
                rounds + accepts
                for rounds, accepts in zip(stats["rounds"], stats["accepts"])
            )
            assert stats["engine_yields"] <= preliminary + per_start_bound
            # Strictly fewer calls than the per-coordinate loop would issue
            # (it pays one call per coordinate per round, plus the accepts).
            per_coordinate_calls = preliminary + sum(
                rounds * len(steps) + accepts
                for rounds, accepts in zip(stats["rounds"], stats["accepts"])
            )
            if len(steps) > 1:
                assert stats["engine_yields"] < per_coordinate_calls

    @SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_series_bit_match_scalar_reference(self, seed):
        rng = np.random.default_rng(seed)
        steps = list(random_steps(rng, int(rng.integers(1, 9))))
        batched = optimize_pl(steps)
        scalar = optimize_pl(steps, use_batch=False)
        assert batched.ratios == scalar.ratios
        assert batched.total_s == pytest.approx(scalar.total_s, abs=TOL, rel=TOL)


class TestServiceLockstepParity:
    """The mixed service path must inherit the descent's call discipline."""

    def _mixed_requests(self, seed: int, n_series: int, n_requests: int):
        rng = np.random.default_rng(seed)
        pool = [random_steps(rng, int(rng.integers(1, 9))) for _ in range(n_series)]
        schemes = ("PL", "OL", "DD")
        return [
            PlanRequest(
                steps=pool[i % n_series],
                scheme=schemes[(i // n_series) % 3],
                request_id=f"q{i}",
            )
            for i in range(n_requests)
        ]

    @SETTINGS
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_mixed_and_legacy_strategies_identical(self, seed):
        requests = self._mixed_requests(seed, 3, 12)
        mixed = PlanService(cache=SharedEstimateCache()).plan_many(requests)
        legacy = PlanService(cache=SharedEstimateCache(), mixed=False).plan_many(
            requests
        )
        for a, b, request in zip(mixed, legacy, requests):
            assert a.ratios == b.ratios
            assert a.total_s == b.total_s
            assert a.group_size == b.group_size
            if request.scheme != "PL":
                # PL row counts differ by design: the vectorized descent
                # counts its speculative rows, the per-coordinate one does
                # not.  Decisions (asserted above) are identical.
                assert a.evaluations == b.evaluations

    def test_one_mixed_call_per_descent_round_across_tasks(self):
        """plan_many issues 1 grid call + max-over-tasks descent calls."""
        requests = self._mixed_requests(31, 4, 16)
        service = PlanService(cache=SharedEstimateCache())
        service.plan_many(requests)
        calls = service.stats()["mixed_engine_calls"]
        pl_tasks = {
            r.task_key: r for r in requests if r.scheme == "PL"
        }
        worst_descent = max(
            optimize_pl(list(r.steps), r.delta).stats["engine_yields"]
            for r in pl_tasks.values()
        )
        assert calls == 1 + worst_descent

    def test_service_answers_match_optimizers(self):
        requests = self._mixed_requests(37, 3, 18)
        responses = PlanService(cache=SharedEstimateCache()).plan_many(requests)
        for response, request in zip(responses, requests):
            reference = optimize_scheme(request.scheme, list(request.steps))
            assert response.ratios == reference.ratios
            assert response.total_s == reference.total_s
            assert response.estimate.cpu_delay_s == reference.estimate.cpu_delay_s
