"""Unit tests for the chained hash table (per-tuple and bulk paths)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashjoin import (
    HashTable,
    HashTableError,
    bucket_of,
    default_bucket_count,
)
from repro.opencl import make_allocator


def build_table(keys, rids=None, n_buckets=16, allocator_kind="block") -> HashTable:
    keys = np.asarray(keys, dtype=np.int64)
    rids = np.arange(len(keys), dtype=np.int64) if rids is None else np.asarray(rids)
    table = HashTable(n_buckets=n_buckets, allocator=make_allocator(allocator_kind))
    buckets = bucket_of(keys, n_buckets)
    table.bulk_insert(keys, rids, buckets)
    return table


class TestDefaultBucketCount:
    def test_power_of_two(self):
        for n in (1, 5, 100, 4096, 5000):
            count = default_bucket_count(n)
            assert count & (count - 1) == 0
            assert count >= min(n, 16)


class TestPerTupleInsertProbe:
    def test_insert_then_probe_finds_rid(self):
        table = HashTable(n_buckets=8, allocator=make_allocator("block"))
        visited, created = table.insert(key=5, rid=42, bucket=3)
        assert created
        assert visited >= 1
        rids, _ = table.probe_one(key=5, bucket=3)
        assert rids == [42]

    def test_duplicate_key_extends_rid_list(self):
        table = HashTable(n_buckets=8, allocator=make_allocator("block"))
        table.insert(5, 1, 3)
        _, created = table.insert(5, 2, 3)
        assert not created
        rids, _ = table.probe_one(5, 3)
        assert sorted(rids) == [1, 2]

    def test_colliding_keys_share_bucket_chain(self):
        table = HashTable(n_buckets=4, allocator=make_allocator("block"))
        table.insert(1, 10, 2)
        table.insert(5, 11, 2)
        table.insert(9, 12, 2)
        assert table.chain_length(2) == 3
        rids, visited = table.probe_one(9, 2)
        assert rids == [12]
        assert visited == 3

    def test_probe_missing_key_returns_empty(self):
        table = HashTable(n_buckets=4, allocator=make_allocator("block"))
        table.insert(1, 10, 2)
        rids, visited = table.probe_one(7, 2)
        assert rids == []
        assert visited == 1

    def test_out_of_range_bucket_rejected(self):
        table = HashTable(n_buckets=4, allocator=make_allocator("block"))
        with pytest.raises(HashTableError):
            table.insert(1, 1, 9)
        with pytest.raises(HashTableError):
            table.probe_one(1, -1)

    def test_validate_after_inserts(self):
        table = HashTable(n_buckets=4, allocator=make_allocator("block"))
        for i in range(50):
            table.insert(i, i, i % 4)
        table.validate()
        assert table.n_key_nodes == 50
        assert table.n_rid_nodes == 50


class TestBulkInsert:
    def test_structure_counts(self):
        keys = np.array([1, 2, 3, 1, 2, 1])
        table = build_table(keys)
        assert table.n_rid_nodes == 6
        assert table.n_key_nodes == 3
        table.validate()

    def test_matches_per_tuple_reference(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 200, size=500)
        rids = np.arange(500)
        buckets = bucket_of(keys, 32)

        bulk = HashTable(n_buckets=32, allocator=make_allocator("block"))
        bulk.bulk_insert(keys, rids, buckets)

        reference = HashTable(n_buckets=32, allocator=make_allocator("block"))
        for k, r, b in zip(keys.tolist(), rids.tolist(), buckets.tolist()):
            reference.insert(k, r, b)

        assert bulk.n_key_nodes == reference.n_key_nodes
        assert bulk.n_rid_nodes == reference.n_rid_nodes
        assert np.array_equal(bulk.bucket_tuple_count, reference.bucket_tuple_count)
        assert np.array_equal(bulk.bucket_key_count, reference.bucket_key_count)
        bulk.validate()
        reference.validate()

    def test_incremental_bulk_inserts(self):
        keys = np.arange(100)
        buckets = bucket_of(keys, 16)
        table = HashTable(n_buckets=16, allocator=make_allocator("block"))
        table.bulk_insert(keys[:50], keys[:50], buckets[:50])
        table.bulk_insert(keys[50:], keys[50:], buckets[50:])
        table.validate()
        assert table.n_rid_nodes == 100
        assert table.n_key_nodes == 100

    def test_work_arrays_have_input_order(self):
        keys = np.array([7, 7, 9])
        rids = np.array([0, 1, 2])
        buckets = np.array([1, 1, 1])
        table = HashTable(n_buckets=4, allocator=make_allocator("block"))
        work = table.bulk_insert(keys, rids, buckets)
        assert work.n_tuples == 3
        assert work.key_nodes_visited.shape == (3,)
        # Exactly two distinct keys -> exactly two "new key" events.
        assert work.new_key_created.sum() == 2

    def test_empty_insert(self):
        table = HashTable(n_buckets=4, allocator=make_allocator("block"))
        work = table.bulk_insert(np.array([]), np.array([]), np.array([]))
        assert work.n_tuples == 0

    def test_mismatched_lengths_rejected(self):
        table = HashTable(n_buckets=4, allocator=make_allocator("block"))
        with pytest.raises(HashTableError):
            table.bulk_insert(np.array([1, 2]), np.array([1]), np.array([0, 1]))


class TestBulkProbe:
    def test_probe_finds_all_matches(self):
        keys = np.array([1, 2, 3, 2])
        table = build_table(keys)
        probe_keys = np.array([2, 3, 9])
        probe_rids = np.array([100, 101, 102])
        buckets = bucket_of(probe_keys, table.n_buckets)
        result, work = table.bulk_probe(probe_keys, probe_rids, buckets)
        assert result.match_count == 3  # key 2 matches twice, key 3 once
        assert work.matches.tolist() == [2.0, 1.0, 0.0]

    def test_probe_empty_table(self):
        table = HashTable(n_buckets=4, allocator=make_allocator("block"))
        result, work = table.bulk_probe(np.array([1]), np.array([0]), np.array([0]))
        assert result.match_count == 0
        assert work.matches.tolist() == [0.0]

    def test_probe_work_visited_at_least_for_hits(self):
        keys = np.arange(64)
        table = build_table(keys, n_buckets=8)
        buckets = bucket_of(keys, 8)
        _, work = table.bulk_probe(keys, keys, buckets)
        assert np.all(work.key_nodes_visited >= 1.0)


class TestMergeAndWorkingSet:
    def test_merge_combines_tables(self):
        keys_a, keys_b = np.arange(0, 50), np.arange(50, 100)
        table_a = build_table(keys_a, n_buckets=16)
        table_b = build_table(keys_b, n_buckets=16)
        stats = table_a.merge_from(table_b)
        assert stats["rid_nodes"] == 50
        assert table_a.n_rid_nodes == 100
        table_a.validate()
        # Every key from both halves must now be probeable in table_a.
        probe_keys = np.arange(100)
        result, _ = table_a.bulk_probe(probe_keys, probe_keys, bucket_of(probe_keys, 16))
        assert result.match_count == 100

    def test_merge_rejects_mismatched_buckets(self):
        table_a = build_table(np.arange(10), n_buckets=8)
        table_b = build_table(np.arange(10), n_buckets=16)
        with pytest.raises(HashTableError):
            table_a.merge_from(table_b)

    def test_nbytes_grows_with_content(self):
        empty = HashTable(n_buckets=16, allocator=make_allocator("block"))
        filled = build_table(np.arange(100), n_buckets=16)
        assert filled.nbytes > empty.nbytes

    def test_working_set_shared_flag(self):
        table = HashTable(n_buckets=16, allocator=make_allocator("block"),
                          shared_between_devices=False)
        assert table.working_set().shared_between_devices is False

    def test_latch_conflict_higher_on_gpu(self):
        keys = np.zeros(200, dtype=np.int64)  # all tuples hit one bucket
        table = build_table(keys, n_buckets=16)
        assert table.latch_conflict_ratio("gpu") >= table.latch_conflict_ratio("cpu")
