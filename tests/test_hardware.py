"""Unit tests for the hardware simulation layer (specs, device, cache, bus)."""

from __future__ import annotations

import pytest

from repro.hardware import (
    APU_CPU,
    APU_GPU,
    CacheSpec,
    DeviceModel,
    DeviceSpec,
    MemoryEnvironment,
    PCIeBus,
    PCIeSpec,
    SetAssociativeCache,
    SpecError,
    CacheModel,
    WorkProfile,
    WorkStats,
    WorkingSet,
    table1_rows,
)


class TestSpecs:
    def test_table1_matches_paper(self):
        rows = {row["metric"]: row for row in table1_rows()}
        assert rows["# Cores"]["CPU (APU)"] == 4
        assert rows["# Cores"]["GPU (APU)"] == 400
        assert rows["# Cores"]["GPU (Discrete)"] == 2048
        assert rows["Core frequency (GHz)"]["CPU (APU)"] == 3.0
        assert rows["Core frequency (GHz)"]["GPU (APU)"] == 0.6
        assert rows["Zero copy buffer (MB)"]["CPU (APU)"] == 512
        assert rows["Cache size (MB)"]["CPU (APU)"] == 4
        assert rows["Local memory size (KB)"]["GPU (APU)"] == 32

    def test_instruction_throughput(self):
        assert APU_CPU.instruction_throughput == pytest.approx(12e9)
        assert APU_GPU.instruction_throughput == pytest.approx(240e9)

    def test_invalid_device_kind_rejected(self):
        with pytest.raises(SpecError):
            DeviceSpec(
                name="x", kind="tpu", cores=1, clock_ghz=1.0, ipc=1.0, wavefront_width=1,
                local_memory_bytes=1, dram_random_access_s=1e-9, cache_hit_access_s=1e-9,
                sequential_bandwidth=1e9, atomic_global_s=1e-9, atomic_local_s=1e-9,
                divergence_penalty=0.0, atomic_contention_factor=1.0,
            )

    def test_cache_spec_validation(self):
        with pytest.raises(SpecError):
            CacheSpec(size_bytes=100, line_bytes=64)
        spec = CacheSpec(size_bytes=4 * 1024 * 1024)
        assert spec.n_lines == spec.size_bytes // spec.line_bytes
        assert spec.n_sets == spec.n_lines // spec.associativity

    def test_scaled_override(self):
        faster = APU_CPU.scaled(clock_ghz=4.0)
        assert faster.clock_ghz == 4.0
        assert faster.cores == APU_CPU.cores


class TestDeviceModel:
    def test_gpu_faster_on_compute(self):
        stats = WorkStats(tuples=1000, instructions=1000 * 180.0)
        cpu = DeviceModel(APU_CPU).elapsed_seconds(stats)
        gpu = DeviceModel(APU_GPU).elapsed_seconds(stats)
        assert gpu < cpu / 10.0

    def test_random_access_cost_similar_across_devices(self):
        stats = WorkStats(tuples=1000, random_accesses=1000.0)
        env = MemoryEnvironment(miss_ratio=1.0)
        cpu = DeviceModel(APU_CPU).elapsed_seconds(stats, env)
        gpu = DeviceModel(APU_GPU).elapsed_seconds(stats, env)
        assert 0.5 < cpu / gpu < 2.0

    def test_miss_ratio_increases_time(self):
        stats = WorkStats(tuples=1000, random_accesses=1000.0)
        model = DeviceModel(APU_CPU)
        hit = model.elapsed_seconds(stats, MemoryEnvironment(miss_ratio=0.0))
        miss = model.elapsed_seconds(stats, MemoryEnvironment(miss_ratio=1.0))
        assert miss > hit

    def test_divergence_penalises_gpu_not_cpu(self):
        uniform = WorkStats(tuples=1000, instructions=1e5, divergence=0.0)
        divergent = WorkStats(tuples=1000, instructions=1e5, divergence=0.8)
        gpu = DeviceModel(APU_GPU)
        cpu = DeviceModel(APU_CPU)
        assert gpu.elapsed_seconds(divergent) > gpu.elapsed_seconds(uniform)
        cpu_penalty = cpu.elapsed_seconds(divergent) / cpu.elapsed_seconds(uniform)
        assert cpu_penalty == pytest.approx(1.0, abs=1e-9)

    def test_atomic_contention_increases_time(self):
        calm = WorkStats(tuples=1000, global_atomics=1000.0, atomic_conflict_ratio=0.0)
        contended = WorkStats(tuples=1000, global_atomics=1000.0, atomic_conflict_ratio=1.0)
        model = DeviceModel(APU_GPU)
        assert model.elapsed_seconds(contended) > model.elapsed_seconds(calm)

    def test_estimated_excludes_atomics(self):
        profile = WorkProfile(instructions_per_tuple=100.0, global_atomics_per_tuple=1.0)
        model = DeviceModel(APU_GPU)
        estimated = model.estimated_time(profile, 1000)
        measured = model.elapsed_seconds(profile.stats_for(1000))
        assert estimated < measured

    def test_unit_cost_scales_linearly(self):
        profile = WorkProfile(instructions_per_tuple=50.0, random_accesses_per_tuple=1.0)
        model = DeviceModel(APU_CPU)
        unit = model.unit_cost(profile)
        assert model.estimated_time(profile, 1000) == pytest.approx(unit * 1000, rel=1e-9)

    def test_invalid_miss_ratio_rejected(self):
        with pytest.raises(ValueError):
            MemoryEnvironment(miss_ratio=1.5)


class TestCacheModel:
    def test_fits_in_cache_low_miss(self):
        model = CacheModel(CacheSpec(size_bytes=4 * 1024 * 1024))
        assert model.miss_ratio(1024 * 1024) == pytest.approx(0.02)

    def test_exceeds_cache_high_miss(self):
        model = CacheModel(CacheSpec(size_bytes=4 * 1024 * 1024))
        assert model.miss_ratio(400 * 1024 * 1024) > 0.9

    def test_partition_fraction_raises_miss(self):
        model = CacheModel(CacheSpec(size_bytes=4 * 1024 * 1024))
        shared = model.miss_ratio(8 * 1024 * 1024, partition_fraction=1.0)
        halved = model.miss_ratio(8 * 1024 * 1024, partition_fraction=0.5)
        assert halved > shared

    def test_record_accesses_accumulates(self):
        model = CacheModel(CacheSpec(size_bytes=1024 * 1024))
        model.record_accesses(1000, 0.25)
        assert model.stats.accesses == 1000
        assert model.stats.misses == 250
        assert model.stats.miss_ratio == pytest.approx(0.25)

    def test_working_set_partition_fraction(self):
        shared_ws = WorkingSet(bytes=1024, shared_between_devices=True)
        private_ws = WorkingSet(bytes=1024, shared_between_devices=False)
        assert shared_ws.partition_fraction(machine_shares_cache=True) == 1.0
        assert private_ws.partition_fraction(machine_shares_cache=True) == 0.5
        assert shared_ws.partition_fraction(machine_shares_cache=False) == 0.5


class TestSetAssociativeCache:
    def test_repeated_access_hits(self):
        cache = SetAssociativeCache(CacheSpec(size_bytes=64 * 1024))
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(8) is True  # same line

    def test_capacity_eviction(self):
        spec = CacheSpec(size_bytes=4 * 1024, line_bytes=64, associativity=2)
        cache = SetAssociativeCache(spec)
        # Touch far more lines than the cache holds, then re-touch the first.
        for address in range(0, 64 * 1024, 64):
            cache.access(address)
        assert cache.access(0) is False

    def test_lru_order(self):
        spec = CacheSpec(size_bytes=2 * 64 * 4, line_bytes=64, associativity=2)
        cache = SetAssociativeCache(spec)
        n_sets = spec.n_sets
        a, b, c = 0, n_sets * 64, 2 * n_sets * 64  # same set
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is now most recent
        cache.access(c)  # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_access_range_counts_lines(self):
        cache = SetAssociativeCache(CacheSpec(size_bytes=64 * 1024))
        misses = cache.access_range(0, 640)
        assert misses == 10

    def test_miss_ratio_agrees_with_analytical_model_for_large_working_set(self):
        spec = CacheSpec(size_bytes=8 * 1024, line_bytes=64, associativity=4)
        simulator = SetAssociativeCache(spec)
        model = CacheModel(spec)
        working_set = 64 * 1024
        import numpy as np

        rng = np.random.default_rng(0)
        for address in rng.integers(0, working_set, size=5000):
            simulator.access(int(address))
        assert abs(simulator.stats.miss_ratio - model.miss_ratio(working_set)) < 0.15


class TestPCIeBus:
    def test_transfer_time_formula(self):
        bus = PCIeBus(PCIeSpec(latency_s=0.015e-3, bandwidth_bytes_per_s=3 * 2**30))
        size = 3 * 2**30
        assert bus.transfer_time(size) == pytest.approx(0.015e-3 + 1.0)

    def test_zero_bytes_is_free(self):
        bus = PCIeBus()
        assert bus.transfer_time(0) == 0.0

    def test_accounting(self):
        bus = PCIeBus()
        bus.transfer(1024, PCIeBus.HOST_TO_DEVICE, label="in")
        bus.transfer(2048, PCIeBus.DEVICE_TO_HOST, label="out")
        assert bus.total_bytes == 3072
        assert len(bus.transfers) == 2
        directions = bus.seconds_by_direction()
        assert directions["h2d"] > 0 and directions["d2h"] > 0
        bus.reset()
        assert bus.total_seconds == 0.0

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            PCIeBus().transfer(10, "sideways")
