"""Tests for the co-processing executor, schemes and the BasicUnit scheduler."""

from __future__ import annotations

import pytest

from repro.core import BasicUnitScheduler, CoProcessingExecutor, Scheme, plan_ratios
from repro.core.executor import ExecutionError
from repro.costmodel import CalibrationTable
from repro.hardware import coupled_machine, discrete_machine
from repro.hashjoin import HashJoinConfig, SimpleHashJoin


@pytest.fixture(scope="module")
def shj_series(small_workload_module):
    run = SimpleHashJoin(HashJoinConfig()).run(
        small_workload_module.build, small_workload_module.probe
    )
    return run.build.series, run.probe.series


@pytest.fixture(scope="module")
def small_workload_module():
    from repro.data import JoinWorkload

    return JoinWorkload.uniform(4_000, 6_000, seed=21)


class TestExecutor:
    def test_ratio_validation(self, shj_series):
        build, _ = shj_series
        executor = CoProcessingExecutor(coupled_machine())
        with pytest.raises(ExecutionError):
            executor.execute_series(build, [0.5])
        with pytest.raises(ExecutionError):
            executor.execute_series(build, [0.5, 0.5, 0.5, 1.5])

    def test_cpu_only_has_no_gpu_time(self, shj_series):
        build, _ = shj_series
        executor = CoProcessingExecutor(coupled_machine())
        timing = executor.execute_single_device(build, "cpu")
        assert timing.gpu_total_s == 0.0
        assert timing.cpu_total_s > 0.0
        assert timing.elapsed_s == pytest.approx(timing.cpu_total_s)

    def test_gpu_only_has_no_cpu_time(self, shj_series):
        build, _ = shj_series
        executor = CoProcessingExecutor(coupled_machine())
        timing = executor.execute_single_device(build, "gpu")
        assert timing.cpu_total_s == 0.0

    def test_split_ratio_balances_devices(self, shj_series):
        build, _ = shj_series
        executor = CoProcessingExecutor(coupled_machine())
        timing = executor.execute_series(build, [0.5] * 4, pipelined=False)
        assert timing.cpu_total_s > 0.0 and timing.gpu_total_s > 0.0
        assert timing.elapsed_s == pytest.approx(max(timing.cpu_total_s, timing.gpu_total_s))

    def test_tuple_counts_split_by_ratio(self, shj_series):
        build, _ = shj_series
        executor = CoProcessingExecutor(coupled_machine())
        timing = executor.execute_series(build, [0.25] * 4, pipelined=False)
        for step in timing.steps:
            assert step.cpu_tuples + step.gpu_tuples == build.n_tuples
            assert step.cpu_tuples == pytest.approx(0.25 * build.n_tuples, abs=1)

    def test_coupled_has_no_transfer(self, shj_series):
        build, _ = shj_series
        executor = CoProcessingExecutor(coupled_machine())
        timing = executor.execute_series(build, [0.3, 0.6, 0.2, 0.8])
        assert timing.transfer_s == 0.0

    def test_discrete_charges_transfer(self, shj_series):
        build, _ = shj_series
        executor = CoProcessingExecutor(discrete_machine())
        timing = executor.execute_series(build, [0.3, 0.6, 0.2, 0.8])
        assert timing.transfer_s > 0.0

    def test_pipelined_delays_nonnegative(self, shj_series):
        build, _ = shj_series
        executor = CoProcessingExecutor(coupled_machine())
        timing = executor.execute_series(build, [0.0, 0.9, 0.1, 0.8], pipelined=True)
        assert all(d >= 0.0 for d in timing.cpu_delay_s + timing.gpu_delay_s)
        # Delays can be zero when the producing device is fast enough; the
        # elapsed time must still dominate the per-device sums.
        assert timing.elapsed_s >= max(timing.cpu_total_s, timing.gpu_total_s) - 1e-12

    def test_equal_ratios_no_delays(self, shj_series):
        build, _ = shj_series
        executor = CoProcessingExecutor(coupled_machine())
        timing = executor.execute_series(build, [0.4] * 4, pipelined=True)
        assert sum(timing.cpu_delay_s) == 0.0
        assert sum(timing.gpu_delay_s) == 0.0

    def test_intermediate_transfer_direction_follows_ratio_change(self, shj_series):
        """Regression: a growing CPU share moves intermediates device->host,
        a shrinking share host->device (previously everything was h2d)."""
        from repro.hardware.pcie import PCIeBus

        build, _ = shj_series
        machine = discrete_machine()
        executor = CoProcessingExecutor(machine)
        ratios = [0.2, 0.8, 0.1, 0.1]  # one increase, one decrease, one plateau
        executor.execute_series(build, ratios, transfer_input=False, transfer_output=False)
        intermediates = [
            t for t in machine.bus.transfers if t.label.endswith(":intermediate")
        ]
        assert len(intermediates) == 2
        by_step = {t.label.split(":")[1]: t.direction for t in intermediates}
        assert by_step["b2"] == PCIeBus.DEVICE_TO_HOST  # 0.2 -> 0.8: CPU grew
        assert by_step["b3"] == PCIeBus.HOST_TO_DEVICE  # 0.8 -> 0.1: CPU shrank

    def test_intermediate_transfer_directions_accounted_separately(self, shj_series):
        build, _ = shj_series
        machine = discrete_machine()
        executor = CoProcessingExecutor(machine)
        executor.execute_series(
            build, [0.0, 1.0, 0.0, 1.0], transfer_input=False, transfer_output=False
        )
        directions = machine.bus.seconds_by_direction()
        assert directions["d2h"] > 0.0  # the two CPU-share increases
        assert directions["h2d"] > 0.0  # the CPU-share decrease

    def test_merge_cost_positive(self):
        executor = CoProcessingExecutor(coupled_machine())
        assert executor.merge_cost(1_000, 10_000, 200_000) > 0.0

    def test_breakdown_dict(self, shj_series):
        build, _ = shj_series
        executor = CoProcessingExecutor(coupled_machine())
        timing = executor.execute_series(build, [0.5] * 4)
        breakdown = timing.breakdown()
        assert breakdown["phase"] == "build"
        assert breakdown["elapsed_s"] == pytest.approx(timing.elapsed_s)


class TestSchemes:
    def test_parse_aliases(self):
        assert Scheme.parse("cpu") is Scheme.CPU_ONLY
        assert Scheme.parse("GPU-only") is Scheme.GPU_ONLY
        assert Scheme.parse("dd") is Scheme.DATA_DIVIDING
        assert Scheme.parse("Pipelined") is Scheme.PIPELINED
        assert Scheme.parse(Scheme.OFFLOADING) is Scheme.OFFLOADING
        with pytest.raises(ValueError):
            Scheme.parse("quantum")

    def test_single_device_flags(self):
        assert Scheme.CPU_ONLY.is_single_device
        assert not Scheme.PIPELINED.is_single_device
        assert Scheme.PIPELINED.uses_pipelined_delays
        assert not Scheme.DATA_DIVIDING.uses_pipelined_delays

    def test_plan_ratios_shapes(self, shj_series):
        build, _ = shj_series
        machine = coupled_machine()
        steps = CalibrationTable.from_series([build], machine).step_costs()
        for scheme in (Scheme.CPU_ONLY, Scheme.GPU_ONLY, Scheme.OFFLOADING,
                       Scheme.DATA_DIVIDING, Scheme.PIPELINED):
            plan = plan_ratios(scheme, "build", steps)
            assert len(plan.ratios) == 4
            assert plan.estimated_s > 0.0
        dd = plan_ratios(Scheme.DATA_DIVIDING, "build", steps)
        assert len(set(dd.ratios)) == 1
        ol = plan_ratios(Scheme.OFFLOADING, "build", steps)
        assert all(r in (0.0, 1.0) for r in ol.ratios)

    def test_plan_ratios_empty_series_rejected(self):
        with pytest.raises(ValueError):
            plan_ratios(Scheme.PIPELINED, "build", [])

    def test_variant_name(self):
        from repro.core import variant_name

        assert variant_name("SHJ", "PL") == "SHJ-PL"
        assert variant_name("PHJ", "cpu") == "CPU-only"


class TestBasicUnit:
    def test_schedule_covers_all_tuples(self, shj_series):
        build, probe = shj_series
        scheduler = BasicUnitScheduler(coupled_machine(), cpu_chunk_tuples=500,
                                       gpu_chunk_tuples=1_000)
        run = scheduler.schedule([build, probe])
        assert len(run.phases) == 2
        for phase in run.phases:
            assert phase.n_chunks >= 1
            assert 0.0 <= phase.cpu_ratio <= 1.0
            assert phase.elapsed_s > 0.0

    def test_both_devices_used_on_large_phase(self, shj_series):
        build, _ = shj_series
        scheduler = BasicUnitScheduler(coupled_machine(), cpu_chunk_tuples=200,
                                       gpu_chunk_tuples=400)
        phase = scheduler.schedule_series(build)
        assert phase.cpu_chunks > 0
        assert phase.gpu_chunks > 0

    def test_scheduling_overhead_grows_with_chunks(self, shj_series):
        build, _ = shj_series
        fine = BasicUnitScheduler(coupled_machine(), cpu_chunk_tuples=100, gpu_chunk_tuples=100)
        coarse = BasicUnitScheduler(coupled_machine(), cpu_chunk_tuples=2_000,
                                    gpu_chunk_tuples=2_000)
        assert (fine.schedule_series(build).scheduling_overhead_s
                > coarse.schedule_series(build).scheduling_overhead_s)

    def test_ratios_by_phase(self, shj_series):
        build, probe = shj_series
        scheduler = BasicUnitScheduler(coupled_machine(), cpu_chunk_tuples=500,
                                       gpu_chunk_tuples=500)
        run = scheduler.schedule([build, probe])
        ratios = run.ratios_by_phase()
        assert set(ratios) == {"build", "probe"}

    def test_as_phase_timing_adapter(self, shj_series):
        build, _ = shj_series
        scheduler = BasicUnitScheduler(coupled_machine(), cpu_chunk_tuples=500,
                                       gpu_chunk_tuples=500)
        timing = scheduler.as_phase_timing(build)
        assert timing.phase == "build"
        assert len(timing.steps) == 4
        assert timing.elapsed_s > 0.0

    def test_invalid_chunk_sizes(self):
        with pytest.raises(Exception):
            BasicUnitScheduler(coupled_machine(), cpu_chunk_tuples=0)
