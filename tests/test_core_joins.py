"""Integration tests for the end-to-end join variants and the planner."""

from __future__ import annotations

import pytest

from repro.core import (
    HashJoinVariant,
    JoinPlanner,
    Scheme,
    VariantConfig,
    external_pair_joiner,
    run_all_variants,
    run_join,
)
from repro.core.joins import JoinVariantError
from repro.data import JoinWorkload
from repro.hardware import coupled_machine, discrete_machine
from repro.hashjoin import ExternalHashJoin, HashJoinConfig, vectorized_reference_join
from repro.experiments.fig19_external import small_buffer_machine


@pytest.fixture(scope="module")
def workload():
    return JoinWorkload.uniform(5_000, 8_000, seed=31)


class TestRunJoin:
    @pytest.mark.parametrize("algorithm", ["SHJ", "PHJ"])
    @pytest.mark.parametrize("scheme", ["CPU-only", "GPU-only", "DD", "OL", "PL"])
    def test_all_variants_produce_correct_results(self, workload, algorithm, scheme):
        timing = run_join(algorithm, scheme, workload.build, workload.probe)
        reference = vectorized_reference_join(workload.build, workload.probe)
        assert timing.result.equals(reference)
        assert timing.total_s > 0.0
        assert timing.estimated_s > 0.0

    def test_variant_metadata(self, workload):
        timing = run_join("SHJ", "PL", workload.build, workload.probe)
        assert timing.variant == "SHJ-PL"
        assert timing.algorithm == "SHJ"
        assert timing.architecture == "coupled"
        assert set(timing.ratios_by_phase()) == {"build", "probe"}

    def test_phj_has_partition_phase(self, workload):
        timing = run_join("PHJ", "DD", workload.build, workload.probe)
        assert timing.phase_seconds("partition") > 0.0
        breakdown = timing.breakdown()
        assert breakdown["total_s"] == pytest.approx(timing.total_s)

    def test_coupled_has_no_transfer(self, workload):
        timing = run_join("SHJ", "DD", workload.build, workload.probe,
                          machine=coupled_machine())
        assert timing.transfer_s == 0.0
        assert timing.merge_s == 0.0  # shared hash table by default

    def test_discrete_charges_transfer_and_merge(self, workload):
        timing = run_join("SHJ", "DD", workload.build, workload.probe,
                          machine=discrete_machine())
        assert timing.architecture == "discrete"
        assert timing.transfer_s > 0.0
        assert timing.merge_s > 0.0

    def test_discrete_slower_than_coupled_for_dd(self, workload):
        discrete_t = run_join("SHJ", "DD", workload.build, workload.probe,
                              machine=discrete_machine())
        coupled_t = run_join("SHJ", "DD", workload.build, workload.probe,
                             machine=coupled_machine())
        assert discrete_t.total_s > coupled_t.total_s

    def test_separate_tables_charge_merge_on_coupled(self, workload):
        timing = run_join("SHJ", "DD", workload.build, workload.probe,
                          shared_hash_table=False)
        assert timing.merge_s > 0.0

    def test_ol_does_not_charge_merge(self, workload):
        timing = run_join("SHJ", "OL", workload.build, workload.probe,
                          shared_hash_table=False)
        assert timing.merge_s == 0.0

    def test_invalid_algorithm_rejected(self, workload):
        with pytest.raises(JoinVariantError):
            run_join("SMJ", "PL", workload.build, workload.probe)

    def test_run_all_variants_keys(self, workload):
        out = run_all_variants(
            workload.build, workload.probe,
            algorithms=("SHJ",), schemes=(Scheme.CPU_ONLY, Scheme.PIPELINED),
        )
        assert set(out) == {"SHJ-CPU-only", "SHJ-PL"}

    def test_variant_config_name(self):
        config = VariantConfig(algorithm="PHJ", scheme=Scheme.PIPELINED)
        assert config.name == "PHJ-PL"
        assert HashJoinVariant(config).config is config


class TestPaperShapeClaims:
    """Qualitative relationships the paper reports (Section 5.5)."""

    @pytest.fixture(scope="class")
    def timings(self):
        workload = JoinWorkload.uniform(60_000, 60_000, seed=5)
        return {
            (alg, scheme): run_join(alg, scheme, workload.build, workload.probe)
            for alg in ("SHJ", "PHJ")
            for scheme in ("CPU-only", "GPU-only", "DD", "PL")
        }

    @pytest.mark.parametrize("algorithm", ["SHJ", "PHJ"])
    def test_pl_fastest(self, timings, algorithm):
        pl = timings[(algorithm, "PL")].total_s
        assert pl <= timings[(algorithm, "CPU-only")].total_s
        assert pl <= timings[(algorithm, "GPU-only")].total_s
        assert pl <= timings[(algorithm, "DD")].total_s * 1.001

    @pytest.mark.parametrize("algorithm", ["SHJ", "PHJ"])
    def test_co_processing_beats_single_device(self, timings, algorithm):
        dd = timings[(algorithm, "DD")].total_s
        assert dd < timings[(algorithm, "CPU-only")].total_s
        assert dd < timings[(algorithm, "GPU-only")].total_s

    @pytest.mark.parametrize("algorithm", ["SHJ", "PHJ"])
    def test_gpu_only_beats_cpu_only(self, timings, algorithm):
        assert (timings[(algorithm, "GPU-only")].total_s
                < timings[(algorithm, "CPU-only")].total_s)

    def test_estimate_tracks_measurement(self, timings):
        for timing in timings.values():
            gap = abs(timing.total_s - timing.estimated_s) / timing.total_s
            assert gap < 0.5


class TestExternalJoin:
    def test_in_buffer_fast_path(self, workload):
        machine = coupled_machine()
        joiner = external_pair_joiner("SHJ", "PL", machine=machine)
        external = ExternalHashJoin(joiner, machine=machine, chunk_tuples=10_000)
        run = external.run(workload.build, workload.probe)
        assert run.fits_in_buffer
        assert run.breakdown.data_copy_s == 0.0
        assert run.result.match_count == workload.expected_matches()

    def test_out_of_buffer_partitioned_path(self):
        workload = JoinWorkload.uniform(30_000, 30_000, seed=17)
        machine = small_buffer_machine(buffer_bytes=64 * 1024)
        joiner = external_pair_joiner("SHJ", "PL", machine=machine)
        external = ExternalHashJoin(joiner, machine=machine, chunk_tuples=10_000)
        run = external.run(workload.build, workload.probe)
        assert not run.fits_in_buffer
        assert run.n_super_partitions > 1
        assert run.breakdown.data_copy_s > 0.0
        assert run.breakdown.partition_s > 0.0
        assert run.result.match_count == workload.expected_matches()


class TestPlanner:
    def test_planner_returns_executable_plan(self, workload):
        planner = JoinPlanner(machine=coupled_machine(), pilot_fraction=0.2,
                              min_pilot_tuples=1_000)
        plan = planner.plan(
            workload.build, workload.probe,
            algorithms=("SHJ",), schemes=(Scheme.CPU_ONLY, Scheme.PIPELINED),
            tune_allocator=False, tune_sharing=False,
        )
        assert plan.chosen.config.scheme in (Scheme.CPU_ONLY, Scheme.PIPELINED)
        assert plan.chosen.measured_s <= max(c.measured_s for c in plan.candidates)
        assert len(plan.ranking()) == 2

    def test_planner_picks_co_processing_over_cpu_only(self, workload):
        planner = JoinPlanner(machine=coupled_machine(), pilot_fraction=0.2,
                              min_pilot_tuples=2_000)
        plan = planner.plan(
            workload.build, workload.probe,
            algorithms=("SHJ",), schemes=(Scheme.CPU_ONLY, Scheme.PIPELINED),
            tune_allocator=False, tune_sharing=False,
        )
        assert plan.chosen.config.scheme is Scheme.PIPELINED

    def test_allocator_tuning_prefers_larger_blocks(self, workload):
        planner = JoinPlanner(machine=coupled_machine(), pilot_fraction=0.2,
                              min_pilot_tuples=2_000)
        base = VariantConfig(algorithm="SHJ", scheme=Scheme.PIPELINED,
                             join_config=HashJoinConfig())
        block = planner.tune_allocator_block(
            workload.build.slice(0, 2_000), workload.probe.slice(0, 2_000), base,
            candidates=(8, 2048),
        )
        assert block == 2048

    def test_plan_and_run_executes_full_workload(self, workload):
        planner = JoinPlanner(machine=coupled_machine(), pilot_fraction=0.1,
                              min_pilot_tuples=1_000)
        timing = planner.plan_and_run(
            workload.build, workload.probe,
            algorithms=("SHJ",), schemes=(Scheme.PIPELINED,),
            tune_allocator=False, tune_sharing=False,
        )
        assert timing.result.match_count == workload.expected_matches()
