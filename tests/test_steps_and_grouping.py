"""Tests for step accounting, the grouping decision helper and join results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashjoin import (
    BUILD_STEPS,
    JoinResult,
    PARTITION_STEPS,
    PROBE_STEPS,
    evaluate_grouping,
    evaluate_step_grouping,
    step_by_name,
    tune_group_count,
)
from repro.hashjoin.steps import PerTupleWork, StepExecution, StepSeries


class TestStepDefinitions:
    def test_catalogue_names(self):
        assert [s.name for s in BUILD_STEPS] == ["b1", "b2", "b3", "b4"]
        assert [s.name for s in PROBE_STEPS] == ["p1", "p2", "p3", "p4"]
        assert [s.name for s in PARTITION_STEPS] == ["n1", "n2", "n3"]

    def test_step_by_name(self):
        assert step_by_name("p3").phase == "probe"
        with pytest.raises(KeyError):
            step_by_name("q7")


class TestPerTupleWork:
    def test_scalar_and_array_quantities_agree(self):
        scalar = PerTupleWork(n_tuples=100, instructions=5.0)
        array = PerTupleWork(n_tuples=100, instructions=np.full(100, 5.0))
        assert scalar.total_stats().instructions == pytest.approx(
            array.total_stats().instructions
        )

    def test_range_selects_subset(self):
        work = PerTupleWork(n_tuples=10, instructions=np.arange(10, dtype=float))
        stats = work.stats_for_range(2, 5)
        assert stats.tuples == 3
        assert stats.instructions == pytest.approx(2 + 3 + 4)

    def test_out_of_bounds_clamped(self):
        work = PerTupleWork(n_tuples=5, instructions=1.0)
        assert work.stats_for_range(-5, 50).tuples == 5
        assert work.stats_for_range(4, 2).tuples == 0

    def test_grouped_reduces_divergence(self):
        values = np.ones(256)
        values[::64] = 100.0
        work = PerTupleWork(n_tuples=256, instructions=values)
        assert (work.total_stats(grouped=True).divergence
                < work.total_stats(grouped=False).divergence)

    def test_average_profile(self):
        work = PerTupleWork(n_tuples=4, instructions=np.array([1.0, 2.0, 3.0, 4.0]),
                            random_accesses=2.0)
        profile = work.average_profile()
        assert profile.instructions_per_tuple == pytest.approx(2.5)
        assert profile.random_accesses_per_tuple == pytest.approx(2.0)

    def test_mismatched_array_length_rejected(self):
        work = PerTupleWork(n_tuples=5, instructions=np.ones(3))
        with pytest.raises(ValueError):
            work.total_stats()

    def test_conflict_ratio_passthrough(self):
        work = PerTupleWork(n_tuples=10, instructions=1.0, global_atomics=1.0)
        stats = work.total_stats(conflict_ratio=0.7)
        assert stats.atomic_conflict_ratio == 0.7


class TestStepSeries:
    def _execution(self, name: str, n: int) -> StepExecution:
        return StepExecution(step=step_by_name(name), work=PerTupleWork(n_tuples=n, instructions=1.0))

    def test_series_requires_consistent_lengths(self):
        with pytest.raises(ValueError):
            StepSeries(phase="build", executions=[self._execution("b1", 5),
                                                  self._execution("b2", 6)])

    def test_series_accessors(self):
        series = StepSeries(phase="build", executions=[self._execution("b1", 5),
                                                       self._execution("b2", 5)])
        assert series.n_steps == 2
        assert series.n_tuples == 5
        assert series.step_names == ["b1", "b2"]
        assert series[1].step.name == "b2"

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            StepSeries(phase="build", executions=[])

    def test_conflict_lookup_by_device(self):
        execution = StepExecution(
            step=step_by_name("b2"),
            work=PerTupleWork(n_tuples=5, instructions=1.0),
            conflict_ratio={"cpu": 0.1, "gpu": 0.6},
        )
        assert execution.conflict_for("gpu") == 0.6
        assert execution.conflict_for("cpu") == 0.1
        assert execution.conflict_for("npu") == 0.0


class TestGroupingDecision:
    def test_skewed_work_worth_grouping(self):
        values = np.ones(4096)
        values[::16] = 200.0
        work = PerTupleWork(n_tuples=4096, instructions=values)
        decision = evaluate_grouping(work)
        assert decision.divergence_grouped < decision.divergence_ungrouped
        assert decision.worthwhile

    def test_uniform_work_not_worth_grouping(self):
        work = PerTupleWork(n_tuples=1024, instructions=10.0)
        decision = evaluate_grouping(work)
        assert decision.divergence_reduction == pytest.approx(0.0)
        assert not decision.worthwhile

    def test_empty_work(self):
        decision = evaluate_grouping(PerTupleWork(n_tuples=0))
        assert decision.divergence_ungrouped == 0.0

    def test_evaluate_step_grouping_wrapper(self):
        execution = StepExecution(
            step=step_by_name("p3"),
            work=PerTupleWork(n_tuples=128, instructions=np.random.default_rng(0).exponential(10.0, 128)),
        )
        decision = evaluate_step_grouping(execution)
        assert 0.0 <= decision.divergence_grouped <= decision.divergence_ungrouped + 1e-12

    def test_tune_group_count_returns_candidate(self):
        values = np.random.default_rng(1).exponential(5.0, 2048)
        work = PerTupleWork(n_tuples=2048, instructions=values)
        assert tune_group_count(work, candidates=(4, 32, 128)) in (4, 32, 128)

    def test_invalid_group_count(self):
        with pytest.raises(ValueError):
            evaluate_grouping(PerTupleWork(n_tuples=4, instructions=1.0), n_groups=0)


class TestJoinResult:
    def test_equals_is_order_insensitive(self):
        a = JoinResult(build_rids=np.array([1, 2]), probe_rids=np.array([10, 20]))
        b = JoinResult(build_rids=np.array([2, 1]), probe_rids=np.array([20, 10]))
        assert a.equals(b)

    def test_unequal_lengths(self):
        a = JoinResult(build_rids=np.array([1]), probe_rids=np.array([10]))
        assert not a.equals(JoinResult.empty())

    def test_concat(self):
        a = JoinResult(build_rids=np.array([1]), probe_rids=np.array([10]))
        b = JoinResult(build_rids=np.array([2]), probe_rids=np.array([20]))
        merged = JoinResult.concat([a, b])
        assert merged.match_count == 2
        assert merged.as_pair_set() == {(1, 10), (2, 20)}

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            JoinResult(build_rids=np.array([1, 2]), probe_rids=np.array([1]))
