"""Edge-case tests: external joins, the latch micro-benchmark model and
experiment-result formatting details."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import JoinWorkload, Relation
from repro.experiments.common import ExperimentResult
from repro.experiments.fig19_external import small_buffer_machine
from repro.experiments.fig20_latch import effective_targets, latch_benchmark_time
from repro.hashjoin import ExternalHashJoin, plan_super_partitions, vectorized_reference_join
from repro.hardware import coupled_machine


def simple_pair_joiner(build: Relation, probe: Relation):
    """A trivial pair joiner charging time proportional to the input size."""
    result = vectorized_reference_join(build, probe)
    return (len(build) + len(probe)) * 1e-9, result


class TestPlanSuperPartitions:
    def test_fits_returns_one(self):
        workload = JoinWorkload.uniform(1_000, 1_000, seed=1)
        assert plan_super_partitions(workload.build, workload.probe, coupled_machine()) == 1

    def test_oversized_returns_power_of_two(self):
        workload = JoinWorkload.uniform(60_000, 60_000, seed=1)
        machine = small_buffer_machine(buffer_bytes=128 * 1024)
        parts = plan_super_partitions(workload.build, workload.probe, machine)
        assert parts > 1
        assert parts & (parts - 1) == 0


class TestExternalHashJoin:
    def test_result_correct_across_many_partitions(self):
        workload = JoinWorkload.uniform(20_000, 20_000, seed=9)
        machine = small_buffer_machine(buffer_bytes=32 * 1024)
        external = ExternalHashJoin(simple_pair_joiner, machine=machine, chunk_tuples=5_000)
        run = external.run(workload.build, workload.probe)
        assert not run.fits_in_buffer
        assert run.result.match_count == workload.expected_matches()
        assert run.breakdown.total_s == pytest.approx(
            run.breakdown.partition_s + run.breakdown.join_s + run.breakdown.data_copy_s
        )

    def test_empty_relations(self):
        machine = coupled_machine()
        external = ExternalHashJoin(simple_pair_joiner, machine=machine)
        run = external.run(Relation.empty("R"), Relation.empty("S"))
        assert run.result.match_count == 0
        assert run.fits_in_buffer

    def test_breakdown_as_dict(self):
        workload = JoinWorkload.uniform(2_000, 2_000, seed=9)
        external = ExternalHashJoin(simple_pair_joiner, machine=coupled_machine())
        run = external.run(workload.build, workload.probe)
        d = run.breakdown.as_dict()
        assert set(d) == {"partition_s", "join_s", "data_copy_s", "total_s"}

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            ExternalHashJoin(simple_pair_joiner, chunk_tuples=0)

    def test_more_chunks_mean_more_copies(self):
        workload = JoinWorkload.uniform(40_000, 40_000, seed=2)
        fine = ExternalHashJoin(
            simple_pair_joiner, machine=small_buffer_machine(64 * 1024), chunk_tuples=5_000
        ).run(workload.build, workload.probe)
        coarse = ExternalHashJoin(
            simple_pair_joiner, machine=small_buffer_machine(64 * 1024), chunk_tuples=40_000
        ).run(workload.build, workload.probe)
        assert fine.result.match_count == coarse.result.match_count
        assert fine.breakdown.data_copy_s >= coarse.breakdown.data_copy_s - 1e-12


class TestLatchModel:
    def test_effective_targets_uniform_is_array_size(self):
        assert effective_targets(1_000, 0.0) == 1_000

    def test_effective_targets_skew_reduces_targets(self):
        assert effective_targets(1_000, 0.25) < 1_000
        assert effective_targets(1_000, 0.25) > 1

    def test_single_element(self):
        assert effective_targets(1, 0.5) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            effective_targets(0, 0.1)
        with pytest.raises(ValueError):
            effective_targets(10, 1.5)

    def test_gpu_worse_than_cpu_on_single_hot_word(self):
        gpu = latch_benchmark_time("gpu", 1, 100_000, 0.0)
        cpu = latch_benchmark_time("cpu", 1, 100_000, 0.0)
        assert gpu > cpu

    def test_contention_falls_with_more_targets(self):
        few = latch_benchmark_time("gpu", 1, 100_000, 0.0)
        many = latch_benchmark_time("gpu", 100_000, 100_000, 0.0)
        assert many < few

    def test_high_skew_not_slower_beyond_cache(self):
        uniform = latch_benchmark_time("cpu", 4_000_000, 100_000, 0.0)
        skewed = latch_benchmark_time("cpu", 4_000_000, 100_000, 0.25)
        assert skewed <= uniform * 1.02


class TestExperimentResultFormatting:
    def test_empty_result_text(self):
        result = ExperimentResult("Empty", "no rows yet")
        assert "(no rows)" in result.to_text()
        assert "(no rows)" in result.to_markdown()

    def test_missing_columns_padded(self):
        result = ExperimentResult("X", "ragged rows")
        result.add_row(a=1)
        result.add_row(b=2)
        text = result.to_text()
        assert "a" in text and "b" in text

    def test_bool_and_int_formatting(self):
        result = ExperimentResult("X", "types")
        result.add_row(flag=True, count=3, value=0.125)
        text = result.to_text()
        assert "True" in text and "3" in text and "0.125" in text

    def test_parameters_recorded(self):
        result = ExperimentResult("X", "params", parameters={"n": 5})
        assert result.parameters["n"] == 5
