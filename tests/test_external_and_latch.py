"""Edge-case tests: external joins, the latch micro-benchmark model and
experiment-result formatting details."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import JoinWorkload, Relation
from repro.data.generator import SKEW_PRESETS, generate_build_relation, generate_probe_relation
from repro.experiments.common import ExperimentResult
from repro.experiments.fig19_external import small_buffer_machine
from repro.experiments.fig20_latch import effective_targets, latch_benchmark_time
from repro.hashjoin import (
    MAX_RADIX_BITS,
    MAX_SUPER_PARTITION_BITS,
    RESULT_PAIR_BYTES,
    ExternalHashJoin,
    SimpleHashJoin,
    SuperPartitionOverflowError,
    plan_partitioning,
    plan_super_partitions,
    vectorized_reference_join,
)
from repro.hardware import coupled_machine


def simple_pair_joiner(build: Relation, probe: Relation):
    """A trivial pair joiner charging time proportional to the input size."""
    result = vectorized_reference_join(build, probe)
    return (len(build) + len(probe)) * 1e-9, result


class TestPlanSuperPartitions:
    def test_fits_returns_one(self):
        workload = JoinWorkload.uniform(1_000, 1_000, seed=1)
        assert plan_super_partitions(workload.build, workload.probe, coupled_machine()) == 1

    def test_oversized_returns_power_of_two(self):
        workload = JoinWorkload.uniform(60_000, 60_000, seed=1)
        machine = small_buffer_machine(buffer_bytes=128 * 1024)
        parts = plan_super_partitions(workload.build, workload.probe, machine)
        assert parts > 1
        assert parts & (parts - 1) == 0

    @staticmethod
    def _past_ceiling_inputs():
        # 1.4M tuples a side against a 1-byte buffer needs > 2**24 partitions.
        relation = Relation.from_keys(np.arange(1_400_000, dtype=np.int64))
        return relation, relation, small_buffer_machine(buffer_bytes=1)

    def test_fan_out_clamped_at_radix_bit_ceiling(self):
        """An absurd buffer/relation ratio must not plan past 24 radix bits;
        the overflow pairs are stage-2's problem (recursion / spilling)."""
        build, probe, machine = self._past_ceiling_inputs()
        parts = plan_super_partitions(build, probe, machine)
        assert parts == 1 << MAX_SUPER_PARTITION_BITS

    def test_overflow_raises_structured_error_when_clamp_disabled(self):
        build, probe, machine = self._past_ceiling_inputs()
        with pytest.raises(SuperPartitionOverflowError) as excinfo:
            plan_super_partitions(build, probe, machine, clamp=False)
        assert excinfo.value.needed_bits > excinfo.value.max_bits
        assert excinfo.value.max_bits == MAX_SUPER_PARTITION_BITS

    def test_fan_out_at_ceiling_does_not_raise(self):
        workload = JoinWorkload.uniform(4_000, 4_000, seed=1)
        pair_bytes = workload.build.nbytes + workload.probe.nbytes
        # Buffer sized so the needed fan-out lands exactly on the ceiling.
        buffer_bytes = max(
            1, int(np.ceil(pair_bytes * 2.0 / (1 << MAX_SUPER_PARTITION_BITS)))
        )
        machine = small_buffer_machine(buffer_bytes=buffer_bytes)
        parts = plan_super_partitions(
            workload.build, workload.probe, machine, clamp=False
        )
        assert parts <= 1 << MAX_SUPER_PARTITION_BITS


class TestPlanPartitioningCeiling:
    """Satellite: huge build sides must cap at 24 total radix bits, not crash."""

    def test_huge_build_side_caps_total_bits(self):
        config = plan_partitioning(1 << 30, target_partition_tuples=1)
        assert config.total_bits <= MAX_RADIX_BITS

    @pytest.mark.parametrize("max_bits_per_pass", [1, 3, 5, 7, 8])
    def test_cap_survives_per_pass_rounding(self, max_bits_per_pass):
        config = plan_partitioning(
            1 << 30, target_partition_tuples=1, max_bits_per_pass=max_bits_per_pass
        )
        assert config.total_bits <= MAX_RADIX_BITS

    def test_normal_sizes_unchanged(self):
        config = plan_partitioning(640_000, target_partition_tuples=10_000)
        assert config.total_bits == 6


class TestExternalHashJoin:
    def test_result_correct_across_many_partitions(self):
        workload = JoinWorkload.uniform(20_000, 20_000, seed=9)
        machine = small_buffer_machine(buffer_bytes=32 * 1024)
        external = ExternalHashJoin(simple_pair_joiner, machine=machine, chunk_tuples=5_000)
        run = external.run(workload.build, workload.probe)
        assert not run.fits_in_buffer
        assert run.result.match_count == workload.expected_matches()
        assert run.breakdown.total_s == pytest.approx(
            run.breakdown.partition_s + run.breakdown.join_s + run.breakdown.data_copy_s
        )

    def test_empty_relations(self):
        machine = coupled_machine()
        external = ExternalHashJoin(simple_pair_joiner, machine=machine)
        run = external.run(Relation.empty("R"), Relation.empty("S"))
        assert run.result.match_count == 0
        assert run.fits_in_buffer

    def test_breakdown_as_dict(self):
        workload = JoinWorkload.uniform(2_000, 2_000, seed=9)
        external = ExternalHashJoin(simple_pair_joiner, machine=coupled_machine())
        run = external.run(workload.build, workload.probe)
        d = run.breakdown.as_dict()
        assert set(d) == {"partition_s", "join_s", "data_copy_s", "total_s"}

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            ExternalHashJoin(simple_pair_joiner, chunk_tuples=0)

    def test_stage2_charges_result_copy_out(self):
        """Regression: stage 2 must charge the join result's copy-out, not
        just the pair's copy-in.  With no spilling or recursion the copied
        bytes are exactly: each relation staged in and out once (stage 1),
        every non-empty pair copied in once, and every emitted rid pair
        copied out once."""
        workload = JoinWorkload.uniform(20_000, 20_000, seed=9)
        machine = small_buffer_machine(buffer_bytes=32 * 1024)
        machine.memory.reset()
        external = ExternalHashJoin(
            simple_pair_joiner, machine=machine, chunk_tuples=5_000
        )
        run = external.run(workload.build, workload.probe)
        assert run.stats.spilled_pairs == 0
        assert run.stats.recursive_splits == 0

        staged = 2 * (workload.build.nbytes + workload.probe.nbytes)
        pair_in = workload.build.nbytes + workload.probe.nbytes  # all pairs occupied
        result_out = run.result.match_count * RESULT_PAIR_BYTES
        assert machine.memory.copied_bytes == staged + pair_in + result_out
        assert result_out > 0  # the historical accounting dropped this term

    def test_more_chunks_mean_more_copies(self):
        workload = JoinWorkload.uniform(40_000, 40_000, seed=2)
        fine = ExternalHashJoin(
            simple_pair_joiner, machine=small_buffer_machine(64 * 1024), chunk_tuples=5_000
        ).run(workload.build, workload.probe)
        coarse = ExternalHashJoin(
            simple_pair_joiner, machine=small_buffer_machine(64 * 1024), chunk_tuples=40_000
        ).run(workload.build, workload.probe)
        assert fine.result.match_count == coarse.result.match_count
        assert fine.breakdown.data_copy_s >= coarse.breakdown.data_copy_s - 1e-12


class TestExternalSkewParity:
    """Satellite: skewed / duplicate-heavy keys through the external join
    (including the recursive re-partition path) must reproduce the simple
    in-memory join exactly."""

    @staticmethod
    def _simple_join_result(build, probe):
        return SimpleHashJoin().run(build, probe).result

    def test_zipfian_keys_match_simple_join(self):
        build = generate_build_relation(
            25_000, skew=SKEW_PRESETS["high-skew"], seed=17
        )
        probe = generate_probe_relation(build, 50_000, seed=18)
        machine = small_buffer_machine(buffer_bytes=48 * 1024)
        run = ExternalHashJoin(
            simple_pair_joiner, machine=machine, chunk_tuples=5_000
        ).run(build, probe)
        assert not run.fits_in_buffer
        assert run.result.equals(self._simple_join_result(build, probe))

    def test_heavy_hitter_triggers_recursion_and_matches_simple_join(self):
        rng = np.random.default_rng(19)
        keys = np.concatenate(
            [
                np.full(2_500, 11, dtype=np.int64),
                rng.integers(0, 80_000, 35_000, dtype=np.int64),
            ]
        )
        build = Relation.from_keys(keys, name="R")
        probe = Relation.from_keys(rng.permutation(keys), name="S")
        machine = small_buffer_machine(buffer_bytes=64 * 1024)
        external = ExternalHashJoin(
            simple_pair_joiner, machine=machine, chunk_tuples=5_000
        )
        run = external.run(build, probe)
        assert run.stats.recursive_splits >= 1
        assert run.result.equals(self._simple_join_result(build, probe))
        assert (
            run.stats.max_in_buffer_bytes * external.overhead_factor
            <= machine.memory.zero_copy.capacity_bytes
        )

    def test_all_equal_keys_match_simple_join(self):
        build = Relation.from_keys(np.full(5_000, 3, dtype=np.int64), name="R")
        probe = Relation.from_keys(np.full(700, 3, dtype=np.int64), name="S")
        machine = small_buffer_machine(buffer_bytes=16 * 1024)
        run = ExternalHashJoin(
            simple_pair_joiner, machine=machine, chunk_tuples=2_000
        ).run(build, probe)
        assert run.stats.spilled_pairs >= 1
        assert run.result.equals(self._simple_join_result(build, probe))


class TestLatchModel:
    def test_effective_targets_uniform_is_array_size(self):
        assert effective_targets(1_000, 0.0) == 1_000

    def test_effective_targets_skew_reduces_targets(self):
        assert effective_targets(1_000, 0.25) < 1_000
        assert effective_targets(1_000, 0.25) > 1

    def test_single_element(self):
        assert effective_targets(1, 0.5) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            effective_targets(0, 0.1)
        with pytest.raises(ValueError):
            effective_targets(10, 1.5)

    def test_gpu_worse_than_cpu_on_single_hot_word(self):
        gpu = latch_benchmark_time("gpu", 1, 100_000, 0.0)
        cpu = latch_benchmark_time("cpu", 1, 100_000, 0.0)
        assert gpu > cpu

    def test_contention_falls_with_more_targets(self):
        few = latch_benchmark_time("gpu", 1, 100_000, 0.0)
        many = latch_benchmark_time("gpu", 100_000, 100_000, 0.0)
        assert many < few

    def test_high_skew_not_slower_beyond_cache(self):
        uniform = latch_benchmark_time("cpu", 4_000_000, 100_000, 0.0)
        skewed = latch_benchmark_time("cpu", 4_000_000, 100_000, 0.25)
        assert skewed <= uniform * 1.02


class TestExperimentResultFormatting:
    def test_empty_result_text(self):
        result = ExperimentResult("Empty", "no rows yet")
        assert "(no rows)" in result.to_text()
        assert "(no rows)" in result.to_markdown()

    def test_missing_columns_padded(self):
        result = ExperimentResult("X", "ragged rows")
        result.add_row(a=1)
        result.add_row(b=2)
        text = result.to_text()
        assert "a" in text and "b" in text

    def test_bool_and_int_formatting(self):
        result = ExperimentResult("X", "types")
        result.add_row(flag=True, count=3, value=0.125)
        text = result.to_text()
        assert "True" in text and "3" in text and "0.125" in text

    def test_parameters_recorded(self):
        result = ExperimentResult("X", "params", parameters={"n": 5})
        assert result.parameters["n"] == 5
