"""Parallel, out-of-core robust hash join (ISSUE 8).

The per-pair joins of a radix-partitioned hash join are independent, so a
process pool may execute them — but only as a *bit-matched* twin of the
serial loop: identical join result, identical step series, identical
allocator counters (the workers' private-allocator deltas are folded back in
pair order).  This suite pins that parity for ``PartitionedHashJoin``,
``CoarseGrainedPHJ`` and ``ExternalHashJoin`` (whose parallel pair tasks
record accounting events that the driver replays in pair order, making even
the float breakdown bit-identical), exercises the pool plumbing in-process
for coverage, and drives the robustness paths: dynamic spilling, recursive
re-partitioning and role reversal under adversarial skew.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.generator import (
    SKEW_PRESETS,
    generate_build_relation,
    generate_probe_relation,
)
from repro.data.relation import Relation
from repro.experiments.fig19_external import small_buffer_machine
from repro.hashjoin import (
    CoarseGrainedPHJ,
    ExternalHashJoin,
    HashJoinConfig,
    PartitionedHashJoin,
    arena_capacity_for,
    join_pair_coarse,
    join_partition_pair,
    vectorized_reference_join,
)
from repro.hashjoin.parallel import (
    MAX_DEFAULT_WORKERS,
    ChunkOutcome,
    PairPool,
    _run_coarse_chunk,
    _run_fine_chunk,
    default_worker_count,
    run_fine_pairs,
    shared_pair_pool,
    split_balanced,
)

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

WORK_QUANTITIES = (
    "instructions",
    "random_accesses",
    "sequential_bytes",
    "global_atomics",
    "local_atomics",
)


def assert_series_lists_equal(a_list, b_list) -> None:
    assert len(a_list) == len(b_list)
    for a_series, b_series in zip(a_list, b_list):
        assert a_series.phase == b_series.phase
        assert len(a_series.executions) == len(b_series.executions)
        for a_exec, b_exec in zip(a_series.executions, b_series.executions):
            assert a_exec.step.name == b_exec.step.name
            assert a_exec.work.n_tuples == b_exec.work.n_tuples
            for name in WORK_QUANTITIES:
                a_q = getattr(a_exec.work, name)
                b_q = getattr(b_exec.work, name)
                if isinstance(a_q, np.ndarray) or isinstance(b_q, np.ndarray):
                    assert isinstance(a_q, np.ndarray) and isinstance(b_q, np.ndarray)
                    assert np.array_equal(a_q, b_q, equal_nan=True), name
                else:
                    assert (a_q == b_q) or (np.isnan(a_q) and np.isnan(b_q)), name


def relation_pair(seed: int, n_build: int, n_probe: int, key_space: int):
    rng = np.random.default_rng(seed)
    build = Relation.from_keys(
        rng.integers(0, key_space, n_build, dtype=np.int64), name="R"
    )
    probe = Relation.from_keys(
        rng.integers(0, key_space, n_probe, dtype=np.int64), name="S"
    )
    return build, probe


# ---------------------------------------------------------------------------
# split_balanced
# ---------------------------------------------------------------------------
class TestSplitBalanced:
    def test_empty(self):
        assert split_balanced([], 4) == []

    def test_rejects_bad_chunk_count(self):
        with pytest.raises(ValueError):
            split_balanced([1, 2], 0)

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            split_balanced([1, 2, 3], 2, weights=[1.0])

    def test_fewer_items_than_chunks(self):
        chunks = split_balanced([1, 2], 8)
        assert chunks == [[1], [2]]

    @given(
        n_items=st.integers(min_value=1, max_value=40),
        n_chunks=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @SETTINGS
    def test_concatenation_invariant(self, n_items, n_chunks, seed):
        rng = np.random.default_rng(seed)
        items = list(range(n_items))
        weights = rng.uniform(0.1, 100.0, n_items).tolist()
        chunks = split_balanced(items, n_chunks, weights)
        assert [x for chunk in chunks for x in chunk] == items
        assert all(chunk for chunk in chunks)
        assert len(chunks) == min(n_chunks, n_items)

    def test_weight_balance_beats_naive_split(self):
        # One huge item at the front: contiguous balancing isolates it.
        weights = [100.0] + [1.0] * 9
        chunks = split_balanced(list(range(10)), 2, weights)
        assert chunks[0] == [0]
        assert chunks[1] == list(range(1, 10))


# ---------------------------------------------------------------------------
# Pool plumbing (in-process for coverage; fork paths exercised where cheap)
# ---------------------------------------------------------------------------
class TestPairPool:
    def test_single_payload_runs_in_process(self):
        pool = PairPool(n_workers=4)
        try:
            assert pool.map(lambda x: x + 1, [41]) == [42]
            assert pool._executor is None  # never started
        finally:
            pool.close()

    def test_single_worker_runs_in_process(self):
        pool = PairPool(n_workers=1)
        try:
            assert pool.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
            assert pool._executor is None
        finally:
            pool.close()

    def test_shared_pool_is_cached_per_worker_count(self):
        assert shared_pair_pool(2) is shared_pair_pool(2)
        assert shared_pair_pool(2) is not shared_pair_pool(3)

    def test_default_worker_count_is_positive_and_capped(self):
        assert 1 <= default_worker_count() <= MAX_DEFAULT_WORKERS
        assert shared_pair_pool().n_workers == default_worker_count()

    def test_fork_pool_preserves_payload_order(self):
        pool = PairPool(n_workers=2)
        try:
            assert pool.map(_square, list(range(6))) == [x * x for x in range(6)]
        finally:
            pool.close()


def _square(x: int) -> int:
    return x * x


def make_pairs(seed: int, n_pairs: int, tuples_per_side: int):
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(n_pairs):
        build = Relation.from_keys(
            rng.integers(0, 500, tuples_per_side, dtype=np.int64), name="R"
        )
        probe = Relation.from_keys(
            rng.integers(0, 500, tuples_per_side, dtype=np.int64), name="S"
        )
        pairs.append((build, probe, None, None))
    return pairs


class TestChunkWorkers:
    """The worker bodies, run in-process (fork children escape coverage)."""

    def test_fine_chunk_matches_direct_pair_joins(self):
        config = HashJoinConfig()
        pairs = make_pairs(5, 3, 400)
        capacity = arena_capacity_for(1200, 1200) + 2400 * 16
        outcome = _run_fine_chunk((pairs, config, False, capacity))
        assert isinstance(outcome, ChunkOutcome)
        assert len(outcome.pairs) == 3

        allocator = config.make_allocator(capacity)
        expected = [
            join_partition_pair(b, p, bh, ph, config, False, allocator)
            for b, p, bh, ph in pairs
        ]
        for (got_b, got_p, got_r, got_bytes), (exp_b, exp_p, exp_r, exp_bytes) in zip(
            outcome.pairs, expected
        ):
            assert got_r.equals(exp_r)
            assert got_bytes == exp_bytes
        assert outcome.stats == allocator.stats
        assert outcome.arena_bytes == allocator.arena.used_bytes
        assert outcome.arena_bumps == allocator.arena.global_atomics

    def test_coarse_chunk_matches_direct_pair_joins(self):
        config = HashJoinConfig(shared_hash_table=False)
        pairs = make_pairs(6, 3, 400)
        capacity = arena_capacity_for(1200, 1200) + 2400 * 16
        outcome = _run_coarse_chunk((pairs, config, False, capacity))
        allocator = config.make_allocator(capacity)
        expected = [
            join_pair_coarse(b, p, bh, ph, config, False, allocator)
            for b, p, bh, ph in pairs
        ]
        for (got_scalars, got_r, got_bytes), (exp_scalars, exp_r, exp_bytes) in zip(
            outcome.pairs, expected
        ):
            assert got_scalars == exp_scalars
            assert got_r.equals(exp_r)
            assert got_bytes == exp_bytes
        assert outcome.stats == allocator.stats

    def test_run_fine_pairs_absorbs_allocator_deltas_in_pair_order(self):
        config = HashJoinConfig()
        pairs = make_pairs(7, 5, 300)
        capacity = arena_capacity_for(1500, 1500) + 3000 * 16

        serial_allocator = config.make_allocator(capacity)
        expected = [
            join_partition_pair(b, p, bh, ph, config, False, serial_allocator)
            for b, p, bh, ph in pairs
        ]
        pooled_allocator = config.make_allocator(capacity)
        outcomes = run_fine_pairs(
            pairs, config, False, capacity, pooled_allocator, n_workers=2
        )
        assert len(outcomes) == len(expected)
        for (_, _, got_r, got_bytes), (_, _, exp_r, exp_bytes) in zip(
            outcomes, expected
        ):
            assert got_r.equals(exp_r)
            assert got_bytes == exp_bytes
        assert pooled_allocator.stats.__dict__ == serial_allocator.stats.__dict__
        assert pooled_allocator.arena.used_bytes == serial_allocator.arena.used_bytes
        assert (
            pooled_allocator.arena.global_atomics
            == serial_allocator.arena.global_atomics
        )


# ---------------------------------------------------------------------------
# Whole-join parity: parallel=True is a bit-matched twin of parallel=False
# ---------------------------------------------------------------------------
class TestFineGrainedParallelParity:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_build=st.integers(min_value=1, max_value=4000),
        key_space=st.sampled_from([97, 1000, 50_000]),
    )
    @SETTINGS
    def test_partitioned_join_parity(self, seed, n_build, key_space):
        build, probe = relation_pair(seed, n_build, n_build * 2, key_space)
        serial = PartitionedHashJoin(
            target_partition_tuples=500, parallel=False
        ).run(build, probe)
        pooled = PartitionedHashJoin(
            target_partition_tuples=500, parallel=True, n_workers=2
        ).run(build, probe)
        assert serial.result.equals(pooled.result)
        assert serial.max_pair_table_bytes == pooled.max_pair_table_bytes
        assert_series_lists_equal(serial.step_series, pooled.step_series)

    def test_parity_on_generated_skewed_workload(self):
        build = generate_build_relation(30_000, skew=SKEW_PRESETS["high-skew"], seed=3)
        probe = generate_probe_relation(build, 60_000, seed=4)
        serial = PartitionedHashJoin(
            target_partition_tuples=1000, parallel=False
        ).run(build, probe)
        pooled = PartitionedHashJoin(
            target_partition_tuples=1000, parallel=True, n_workers=2
        ).run(build, probe)
        assert serial.result.equals(pooled.result)
        assert_series_lists_equal(serial.step_series, pooled.step_series)


class TestCoarseParallelParity:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_build=st.integers(min_value=1, max_value=3000),
    )
    @SETTINGS
    def test_coarse_join_parity(self, seed, n_build):
        build, probe = relation_pair(seed, n_build, n_build * 2, 1000)
        serial = CoarseGrainedPHJ(
            target_partition_tuples=500, parallel=False
        ).run(build, probe)
        pooled = CoarseGrainedPHJ(
            target_partition_tuples=500, parallel=True, n_workers=2
        ).run(build, probe)
        assert serial.result.equals(pooled.result)
        assert serial.total_table_bytes == pooled.total_table_bytes
        assert_series_lists_equal(
            [serial.pair_series], [pooled.pair_series]
        )


def simple_pair_joiner(build: Relation, probe: Relation):
    return (len(build) + len(probe)) * 1e-9, vectorized_reference_join(build, probe)


class TestExternalParallelParity:
    def test_breakdown_and_result_bit_identical(self):
        build, probe = relation_pair(11, 20_000, 20_000, 8000)
        expected = vectorized_reference_join(build, probe)

        machine = small_buffer_machine(32 * 1024)
        serial = ExternalHashJoin(
            simple_pair_joiner, machine=machine, chunk_tuples=5000, parallel=False
        ).run(build, probe)
        serial_copied = machine.memory.copied_bytes

        machine.memory.reset()
        pooled = ExternalHashJoin(
            simple_pair_joiner,
            machine=machine,
            chunk_tuples=5000,
            parallel=True,
            n_workers=4,
        ).run(build, probe)

        assert serial.result.equals(expected)
        assert pooled.result.equals(expected)
        # Events replay in pair order, so even float accumulation matches.
        assert serial.breakdown.as_dict() == pooled.breakdown.as_dict()
        assert machine.memory.copied_bytes == serial_copied
        assert serial.stats == pooled.stats

    def test_single_pair_stays_serial(self):
        build, probe = relation_pair(12, 500, 500, 100)
        external = ExternalHashJoin(
            simple_pair_joiner, machine=small_buffer_machine(), parallel=True
        )
        run = external.run(build, probe)
        assert run.fits_in_buffer
        assert run.result.equals(vectorized_reference_join(build, probe))

    def test_default_worker_count_path(self):
        build, probe = relation_pair(13, 6000, 6000, 2000)
        external = ExternalHashJoin(
            simple_pair_joiner,
            machine=small_buffer_machine(32 * 1024),
            chunk_tuples=2000,
            parallel=True,  # n_workers defaults from the CPU count
        )
        run = external.run(build, probe)
        assert not run.fits_in_buffer
        assert run.result.equals(vectorized_reference_join(build, probe))


# ---------------------------------------------------------------------------
# Robustness: spilling, recursion, role reversal under adversarial skew
# ---------------------------------------------------------------------------
class TestRobustness:
    def test_all_duplicate_keys_spill_within_budget(self):
        """A single heavy-hitter key defeats re-partitioning entirely: the
        pair must spill (streamed against the resident smaller side, roles
        reversed) and still produce the exact cross product."""
        buffer_bytes = 16 * 1024
        build = Relation.from_keys(np.full(8000, 42, dtype=np.int64), name="R")
        probe = Relation.from_keys(np.full(900, 42, dtype=np.int64), name="S")
        external = ExternalHashJoin(
            simple_pair_joiner,
            machine=small_buffer_machine(buffer_bytes),
            chunk_tuples=5000,
        )
        run = external.run(build, probe)
        assert run.result.equals(vectorized_reference_join(build, probe))
        assert run.result.match_count == 8000 * 900
        assert run.stats.spilled_pairs >= 1
        assert run.stats.role_reversals >= 1
        assert run.stats.max_in_buffer_bytes * external.overhead_factor <= buffer_bytes

    def test_block_nested_loop_when_both_sides_overflow(self):
        buffer_bytes = 4 * 1024
        build = Relation.from_keys(np.full(4000, 7, dtype=np.int64), name="R")
        probe = Relation.from_keys(np.full(4000, 7, dtype=np.int64), name="S")
        external = ExternalHashJoin(
            simple_pair_joiner,
            machine=small_buffer_machine(buffer_bytes),
            chunk_tuples=2000,
        )
        run = external.run(build, probe)
        assert run.result.match_count == 4000 * 4000
        assert run.stats.spilled_pairs >= 1
        assert run.stats.max_in_buffer_bytes * external.overhead_factor <= buffer_bytes

    def test_heavy_hitter_mix_recurses_then_finishes(self):
        """Zipfian-style mix: recursion peels the uniform partitions level by
        level (fresh seed each level) until only the irreducible heavy-hitter
        pair is left to spill — all within the simulated budget."""
        rng = np.random.default_rng(21)
        keys = np.concatenate(
            [
                np.full(3000, 7, dtype=np.int64),
                rng.integers(0, 100_000, 40_000, dtype=np.int64),
            ]
        )
        build = Relation.from_keys(keys, name="R")
        probe = Relation.from_keys(rng.permutation(keys), name="S")
        buffer_bytes = 64 * 1024
        external = ExternalHashJoin(
            simple_pair_joiner,
            machine=small_buffer_machine(buffer_bytes),
            chunk_tuples=5000,
        )
        run = external.run(build, probe)
        assert run.result.equals(vectorized_reference_join(build, probe))
        assert run.stats.recursive_splits >= 1
        assert run.stats.max_pair_depth >= 1
        assert run.stats.max_pair_depth <= external.max_recursion_depth
        assert run.stats.max_in_buffer_bytes * external.overhead_factor <= buffer_bytes

    def test_recursion_depth_budget_is_respected(self):
        rng = np.random.default_rng(22)
        build = Relation.from_keys(
            rng.integers(0, 100_000, 40_000, dtype=np.int64), name="R"
        )
        probe = Relation.from_keys(
            rng.integers(0, 100_000, 40_000, dtype=np.int64), name="S"
        )
        external = ExternalHashJoin(
            simple_pair_joiner,
            machine=small_buffer_machine(8 * 1024),
            chunk_tuples=5000,
            max_recursion_depth=0,
        )
        run = external.run(build, probe)
        # With no recursion allowed, every oversized pair spills directly.
        assert run.stats.recursive_splits == 0
        assert run.stats.max_pair_depth == 0
        assert run.result.equals(vectorized_reference_join(build, probe))

    def test_role_reversal_can_be_disabled(self):
        build = Relation.from_keys(np.full(6000, 3, dtype=np.int64), name="R")
        probe = Relation.from_keys(np.full(300, 3, dtype=np.int64), name="S")
        external = ExternalHashJoin(
            simple_pair_joiner,
            machine=small_buffer_machine(16 * 1024),
            chunk_tuples=5000,
            role_reversal=False,
        )
        run = external.run(build, probe)
        assert run.stats.role_reversals == 0
        assert run.result.match_count == 6000 * 300

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ExternalHashJoin(simple_pair_joiner, chunk_tuples=0)
        with pytest.raises(ValueError):
            ExternalHashJoin(simple_pair_joiner, overhead_factor=0.5)
        with pytest.raises(ValueError):
            ExternalHashJoin(simple_pair_joiner, max_recursion_depth=-1)
