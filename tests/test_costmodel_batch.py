"""Batch cost-model engine: equivalence with the scalar reference, cache,
optimizer parity and the PCI-e/grid/Monte-Carlo regression fixes."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.costmodel import (
    CostModelError,
    EstimateCache,
    MonteCarloSample,
    SeriesEvaluator,
    StepCost,
    dd_sweep,
    estimate_series,
    estimate_series_batch,
    optimize_dd,
    optimize_ol,
    optimize_pl,
    ratio_grid,
    run_monte_carlo,
    steps_fingerprint,
)
from repro.costmodel.batch import batch_totals

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TOL = 1e-12


def random_steps(rng: np.random.Generator, n: int) -> list[StepCost]:
    return [
        StepCost(
            f"s{i}",
            int(rng.integers(0, 200_000)),
            cpu_unit_s=float(rng.uniform(0.0, 5e-8)),
            gpu_unit_s=float(rng.uniform(0.0, 5e-8)),
            intermediate_bytes_per_tuple=float(rng.uniform(0.0, 16.0)),
        )
        for i in range(n)
    ]


def assert_rows_match_scalar(steps: list[StepCost], matrix: np.ndarray) -> None:
    batch = estimate_series_batch(steps, matrix)
    for i in range(matrix.shape[0]):
        reference = estimate_series(steps, matrix[i].tolist())
        assert batch.cpu_total_s[i] == pytest.approx(reference.cpu_total_s, abs=TOL, rel=TOL)
        assert batch.gpu_total_s[i] == pytest.approx(reference.gpu_total_s, abs=TOL, rel=TOL)
        assert batch.total_s[i] == pytest.approx(reference.total_s, abs=TOL, rel=TOL)
        assert batch.intermediate_bytes[i] == pytest.approx(
            reference.intermediate_bytes, rel=1e-9, abs=1e-9
        )
        row = batch.row(i)
        assert row.cpu_step_s == pytest.approx(reference.cpu_step_s, abs=TOL)
        assert row.gpu_step_s == pytest.approx(reference.gpu_step_s, abs=TOL)
        assert row.cpu_delay_s == pytest.approx(reference.cpu_delay_s, abs=TOL)
        assert row.gpu_delay_s == pytest.approx(reference.gpu_delay_s, abs=TOL)


class TestBatchEquivalence:
    @SETTINGS
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_random_matrices_match_scalar(self, n_steps, n_rows, seed):
        rng = np.random.default_rng(seed)
        steps = random_steps(rng, n_steps)
        matrix = rng.uniform(0.0, 1.0, size=(n_rows, n_steps))
        assert_rows_match_scalar(steps, matrix)

    def test_ol_corner_rows_match_scalar(self):
        """All-0/1 assignments: the ratio-change denominators hit their 0/1 edges."""
        rng = np.random.default_rng(17)
        steps = random_steps(rng, 5)
        matrix = np.array(
            [[float(b) for b in np.binary_repr(k, width=5)] for k in range(2**5)]
        )
        assert_rows_match_scalar(steps, matrix)

    def test_equal_ratio_dd_rows_have_exactly_zero_delays(self):
        """DD rows (one ratio for every step) must produce Eq. 4/5 delays of 0."""
        rng = np.random.default_rng(23)
        steps = random_steps(rng, 6)
        grid = ratio_grid(0.02)
        matrix = np.repeat(grid[:, np.newaxis], 6, axis=1)
        batch = estimate_series_batch(steps, matrix)
        assert np.all(batch.cpu_delay_s == 0.0)
        assert np.all(batch.gpu_delay_s == 0.0)
        assert np.all(batch.intermediate_bytes == 0.0)
        assert_rows_match_scalar(steps, matrix)

    def test_single_vector_promoted_to_one_row(self):
        steps = random_steps(np.random.default_rng(1), 4)
        batch = estimate_series_batch(steps, [0.1, 0.9, 0.3, 0.3])
        assert len(batch) == 1
        reference = estimate_series(steps, [0.1, 0.9, 0.3, 0.3])
        assert batch.total_s[0] == pytest.approx(reference.total_s, abs=TOL)

    def test_empty_series(self):
        batch = estimate_series_batch([], np.zeros((3, 0)))
        assert len(batch) == 3
        assert np.all(batch.total_s == 0.0)

    def test_validation_matches_scalar(self):
        steps = random_steps(np.random.default_rng(2), 3)
        with pytest.raises(CostModelError):
            estimate_series_batch(steps, np.full((2, 3), 1.5))
        with pytest.raises(CostModelError):
            estimate_series_batch(steps, np.zeros((2, 4)))
        with pytest.raises(CostModelError):
            estimate_series_batch(steps, np.zeros((2, 2, 3)))

    def test_argmin_is_first_minimum(self):
        steps = [StepCost("s", 1_000, cpu_unit_s=1e-9, gpu_unit_s=1e-9)]
        batch = estimate_series_batch(steps, [[0.5], [0.5], [0.0]])
        assert batch.argmin() == 0

    @SETTINGS
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_totals_fast_path_matches_full_batch(self, n_steps, n_rows, seed):
        """batch_totals (the optimiser hot path) equals the full evaluation."""
        rng = np.random.default_rng(seed)
        steps = random_steps(rng, n_steps)
        matrix = rng.uniform(0.0, 1.0, size=(n_rows, n_steps))
        fast = batch_totals(steps, matrix)
        full = estimate_series_batch(steps, matrix).total_s
        assert np.array_equal(fast, full)
        assert np.array_equal(batch_totals(steps, matrix, validate=False), full)

    def test_totals_fast_path_validates_by_default(self):
        steps = random_steps(np.random.default_rng(3), 2)
        with pytest.raises(CostModelError):
            batch_totals(steps, [[1.5, 0.0]])


class TestRatioGrid:
    def test_grid_spacing_honours_delta(self):
        """Regression: delta=0.03 used to silently produce spacing 0.0303..."""
        grid = ratio_grid(0.03)
        spacing = np.diff(grid[:-1])
        assert np.allclose(spacing, 0.03, atol=1e-9)
        assert grid[0] == 0.0
        assert grid[-1] == 1.0
        assert grid[-2] == pytest.approx(0.99)

    def test_grid_unchanged_when_delta_divides_one(self):
        grid = ratio_grid(0.02)
        assert len(grid) == 51
        assert np.allclose(np.diff(grid), 0.02, atol=1e-9)

    @SETTINGS
    @given(st.floats(min_value=0.005, max_value=1.0))
    def test_grid_properties_any_delta(self, delta):
        grid = ratio_grid(delta)
        assert grid[0] == 0.0
        assert grid[-1] == 1.0
        assert np.all(np.diff(grid) > 0)
        # every interior point is an exact multiple of delta (to rounding)
        interior = grid[1:-1]
        multiples = np.round(interior / delta)
        assert np.allclose(interior, multiples * delta, atol=1e-9)


class TestOptimizerParity:
    """The batched optimisers must match the scalar evaluation path exactly."""

    @SETTINGS
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_pl_identical_to_scalar_path(self, n_steps, seed):
        """The vectorized descent's decisions must match the scalar loop.

        The two paths may evaluate different *row counts* (the vectorized
        rounds include speculative rows discarded after an accepted update),
        but every chosen ratio and the resulting estimate are identical.
        """
        steps = random_steps(np.random.default_rng(seed), n_steps)
        batched = optimize_pl(steps, delta=0.1)
        scalar = optimize_pl(steps, delta=0.1, use_batch=False)
        assert batched.ratios == scalar.ratios
        assert batched.total_s == pytest.approx(scalar.total_s, abs=TOL, rel=TOL)
        # One engine call per descent round plus one per accepted update
        # (plus the DD-start grid and, for short series, the coarse grid).
        preliminary = 1 + (1 if n_steps <= 3 else 0)
        bound = preliminary + max(
            rounds + accepts
            for rounds, accepts in zip(
                batched.stats["rounds"], batched.stats["accepts"]
            )
        )
        assert batched.stats["engine_yields"] <= bound

    @SETTINGS
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_dd_and_ol_identical_to_scalar_path(self, n_steps, seed):
        steps = random_steps(np.random.default_rng(seed), n_steps)
        # Direct calls (not a loop over a function variable) so the
        # kernel-parity checker can see both toggles exercised statically.
        for batched, scalar in (
            (optimize_dd(steps), optimize_dd(steps, use_batch=False)),
            (optimize_ol(steps), optimize_ol(steps, use_batch=False)),
        ):
            assert batched.ratios == scalar.ratios
            assert batched.evaluations == scalar.evaluations
            assert batched.total_s == pytest.approx(scalar.total_s, abs=TOL, rel=TOL)

    @SETTINGS
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_pl_vectorized_toggle_identical_decisions(self, n_steps, seed):
        """vectorized=False (per-coordinate descent) is the reference the
        speculative batched descent must match ratio-for-ratio."""
        steps = random_steps(np.random.default_rng(seed), n_steps)
        batched = optimize_pl(steps, delta=0.1, vectorized=True)
        reference = optimize_pl(steps, delta=0.1, vectorized=False)
        assert batched.ratios == reference.ratios
        assert batched.total_s == pytest.approx(
            reference.total_s, abs=TOL, rel=TOL
        )

    @SETTINGS
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_series_evaluator_toggle_matches_scalar_rows(self, n_steps, seed):
        """SeriesEvaluator(use_batch=False) routes every row through the
        scalar model; the batch engine must reproduce those totals."""
        rng = np.random.default_rng(seed)
        steps = random_steps(rng, n_steps)
        matrix = rng.uniform(0.0, 1.0, size=(8, n_steps))
        batched = SeriesEvaluator(steps, use_batch=True)
        scalar = SeriesEvaluator(steps, use_batch=False)
        np.testing.assert_allclose(
            batched.totals(matrix), scalar.totals(matrix), rtol=TOL, atol=TOL
        )
        assert batched.evaluations == scalar.evaluations == matrix.shape[0]

    def test_empty_series_consistent_across_optimizers(self):
        """Regression: optimize_ol([]) crashed in ol_candidate_matrix while
        optimize_dd([]) returned the empty assignment."""
        assert optimize_dd([]).ratios == []
        assert optimize_ol([]).ratios == []
        assert optimize_ol([]).total_s == 0.0

    def test_dd_result_estimate_is_reference_estimate(self):
        steps = random_steps(np.random.default_rng(5), 4)
        result = optimize_dd(steps)
        reference = estimate_series(steps, result.ratios)
        assert result.estimate.total_s == reference.total_s
        assert result.estimate.cpu_step_s == reference.cpu_step_s

    def test_dd_sweep_matches_scalar_series(self):
        steps = random_steps(np.random.default_rng(6), 4)
        for ratio, total in dd_sweep(steps, delta=0.25):
            assert total == pytest.approx(
                estimate_series(steps, [ratio] * 4).total_s, abs=TOL, rel=TOL
            )


class TestEstimateCache:
    def test_totals_cached_and_consistent(self):
        steps = random_steps(np.random.default_rng(9), 5)
        matrix = np.random.default_rng(10).uniform(0, 1, size=(30, 5))
        cache = EstimateCache()
        first = cache.totals(steps, matrix)
        assert cache.misses == 30 and cache.hits == 0
        second = cache.totals(steps, matrix)
        assert cache.hits == 30
        assert np.array_equal(first, second)
        assert np.array_equal(first, estimate_series_batch(steps, matrix).total_s)

    def test_partial_hits_fill_only_missing_rows(self):
        steps = random_steps(np.random.default_rng(11), 3)
        cache = EstimateCache()
        cache.totals(steps, [[0.1, 0.2, 0.3]])
        totals = cache.totals(steps, [[0.1, 0.2, 0.3], [0.4, 0.5, 0.6]])
        assert cache.hits == 1 and cache.misses == 2
        assert totals[1] == pytest.approx(
            estimate_series(steps, [0.4, 0.5, 0.6]).total_s, abs=TOL
        )

    def test_different_steps_do_not_collide(self):
        rng = np.random.default_rng(12)
        steps_a = random_steps(rng, 3)
        steps_b = random_steps(rng, 3)
        assert steps_fingerprint(steps_a) != steps_fingerprint(steps_b)
        cache = EstimateCache()
        ta = cache.totals(steps_a, [[0.5, 0.5, 0.5]])
        tb = cache.totals(steps_b, [[0.5, 0.5, 0.5]])
        assert ta[0] == estimate_series(steps_a, [0.5] * 3).total_s
        assert tb[0] == estimate_series(steps_b, [0.5] * 3).total_s

    def test_estimate_view_cached(self):
        steps = random_steps(np.random.default_rng(13), 4)
        cache = EstimateCache()
        first = cache.estimate(steps, [0.25] * 4)
        assert cache.misses == 1
        second = cache.estimate(steps, [0.25] * 4)
        assert cache.hits == 1
        assert first.total_s == estimate_series(steps, [0.25] * 4).total_s
        # Hits hand out copies: mutating one caller's estimate must not
        # corrupt later hits for the same key.
        first.cpu_step_s[0] = 123.0
        third = cache.estimate(steps, [0.25] * 4)
        assert third.cpu_step_s == second.cpu_step_s
        assert third.cpu_step_s[0] != 123.0

    def test_optimizers_with_cache_return_same_ratios(self):
        steps = random_steps(np.random.default_rng(14), 6)
        cache = EstimateCache()
        assert optimize_pl(steps, cache=cache).ratios == optimize_pl(steps).ratios
        # Coordinate descent revisits rows (DD start, repeated columns), so a
        # single cached run already observes hits.
        assert cache.hits > 0
        hits = cache.hits
        optimize_pl(steps, cache=cache)
        assert cache.hits > hits  # a repeated optimisation is served from cache

    def test_eviction_bounds_size(self):
        steps = random_steps(np.random.default_rng(15), 2)
        cache = EstimateCache(max_entries=16)
        rng = np.random.default_rng(16)
        for _ in range(10):
            cache.totals(steps, rng.uniform(0, 1, size=(8, 2)))
            assert len(cache) <= 16  # hard bound, enforced on every insert


class TestLRUEviction:
    """Regression: ``max_entries`` used to be accepted but never enforced."""

    def test_size_bound_and_hottest_series_survive(self):
        """max_entries + k inserted rows: bound holds, hot keys stay cached."""
        rng = np.random.default_rng(40)
        all_series = [random_steps(rng, 3) for _ in range(5)]
        matrices = [rng.uniform(0, 1, size=(30, 3)) for _ in range(5)]
        cache = EstimateCache(max_entries=100)

        # 150 rows pushed through a 100-row cache, touching series 0-2 first.
        for k in range(3):
            cache.totals(all_series[k], matrices[k])
        assert len(cache) == 90
        cache.totals(all_series[1], matrices[1])  # refresh series 1: all hits
        assert cache.hits == 30
        for k in (3, 4):
            cache.totals(all_series[k], matrices[k])

        assert len(cache) <= 100
        cached = cache.fingerprints()
        # Least recently used series (0, then 2) were evicted; the refreshed
        # series 1 and the most recent insertions survive.
        assert steps_fingerprint(all_series[0]) not in cached
        assert steps_fingerprint(all_series[2]) not in cached
        for k in (1, 3, 4):
            assert steps_fingerprint(all_series[k]) in cached

        # Surviving rows are served without recomputation.
        misses = cache.misses
        cache.totals(all_series[1], matrices[1])
        cache.totals(all_series[4], matrices[4])
        assert cache.misses == misses

    def test_evicted_series_recomputed_consistently(self):
        rng = np.random.default_rng(41)
        all_series = [random_steps(rng, 2) for _ in range(3)]
        matrix = rng.uniform(0, 1, size=(20, 2))
        cache = EstimateCache(max_entries=40)
        first = cache.totals(all_series[0], matrix)
        cache.totals(all_series[1], matrix)
        cache.totals(all_series[2], matrix)  # evicts series 0
        assert steps_fingerprint(all_series[0]) not in cache.fingerprints()
        again = cache.totals(all_series[0], matrix)  # recomputed, same values
        assert np.array_equal(first, again)

    def test_single_series_larger_than_bound_still_bounded(self):
        steps = random_steps(np.random.default_rng(42), 2)
        cache = EstimateCache(max_entries=10)
        cache.totals(steps, np.random.default_rng(43).uniform(0, 1, size=(25, 2)))
        assert len(cache) <= 10

    def test_estimate_view_evicts_lru_series(self):
        rng = np.random.default_rng(44)
        all_series = [random_steps(rng, 2) for _ in range(3)]
        cache = EstimateCache(max_entries=2)
        cache.estimate(all_series[0], [0.5, 0.5])
        cache.estimate(all_series[1], [0.5, 0.5])
        cache.estimate(all_series[0], [0.25, 0.25])  # refreshes series 0
        cache.estimate(all_series[2], [0.5, 0.5])  # series 1 is now the LRU
        assert len(cache) <= 2
        misses = cache.misses
        cache.estimate(all_series[2], [0.5, 0.5])
        assert cache.misses == misses  # most recent entry still cached
        cache.estimate(all_series[1], [0.5, 0.5])
        assert cache.misses == misses + 1  # the LRU series was evicted

    def test_bound_is_combined_across_totals_and_estimates(self):
        """max_entries caps the two views together, not each separately."""
        rng = np.random.default_rng(45)
        all_series = [random_steps(rng, 2) for _ in range(3)]
        cache = EstimateCache(max_entries=20)
        cache.totals(all_series[0], rng.uniform(0, 1, size=(15, 2)))
        for k in range(10):
            cache.estimate(all_series[1], [k / 10.0] * 2)
            assert len(cache) <= 20
        # Totals inserts also count the estimate view against the budget.
        cache.totals(all_series[2], rng.uniform(0, 1, size=(15, 2)))
        assert len(cache) <= 20

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            EstimateCache(max_entries=0)


class TestRunawayEviction:
    """Regression (ISSUE 7 satellite): a single series whose bucket alone
    exceeds the budget used to trigger LRU-first eviction, flushing every
    *fitting* series' rows before finally reaching the oversized bucket —
    one runaway workload left the cache cold for everyone."""

    def test_runaway_bucket_dropped_directly_fitting_series_survive(self):
        rng = np.random.default_rng(46)
        fitting = [random_steps(rng, 3) for _ in range(3)]
        matrices = [rng.uniform(0, 1, size=(20, 3)) for _ in range(3)]
        runaway = random_steps(rng, 3)
        cache = EstimateCache(max_entries=100)

        for steps, matrix in zip(fitting, matrices):
            cache.totals(steps, matrix)
        assert len(cache) == 60

        # 150 rows in one series: bigger than the whole budget.  The fix
        # drops this bucket itself instead of evicting LRU-first through
        # every fitting series.
        cache.totals(runaway, rng.uniform(0, 1, size=(150, 3)))

        assert len(cache) <= 100
        cached = cache.fingerprints()
        assert steps_fingerprint(runaway) not in cached
        for steps in fitting:
            assert steps_fingerprint(steps) in cached

        # The fitting series answer from cache — zero new misses.
        misses = cache.misses
        for steps, matrix in zip(fitting, matrices):
            cache.totals(steps, matrix)
        assert cache.misses == misses

    def test_runaway_estimate_bucket_dropped_directly(self):
        # The estimate view grows one row per insert, so the oversize
        # trigger fires on the insert that pushes the bucket past the
        # bound: the bucket is dropped whole, not trimmed row by row.
        rng = np.random.default_rng(47)
        runaway = random_steps(rng, 2)
        cache = EstimateCache(max_entries=10)
        for k in range(12):
            cache.estimate(runaway, [k / 100.0] * 2)
            assert len(cache) <= 10
        # Insert 11 pushed the bucket past the bound and dropped it whole;
        # insert 12 restarted it from scratch with a single row.
        assert len(cache) == 1

    def test_runaway_values_still_correct_when_recomputed(self):
        rng = np.random.default_rng(48)
        runaway = random_steps(rng, 3)
        matrix = rng.uniform(0, 1, size=(40, 3))
        cache = EstimateCache(max_entries=20)
        first = cache.totals(runaway, matrix)
        again = cache.totals(runaway, matrix)  # bucket was dropped: recompute
        assert np.array_equal(first, again)
        assert np.array_equal(first, batch_totals(runaway, matrix))


class TestMonteCarloRegressions:
    def test_relative_error_nan_for_degenerate_measurement(self):
        sample = MonteCarloSample(ratios=[0.5], estimated_s=1.0, measured_s=0.0)
        assert math.isnan(sample.relative_error)
        sample = MonteCarloSample(ratios=[0.5], estimated_s=1.0, measured_s=-1.0)
        assert math.isnan(sample.relative_error)

    def test_error_quantile_excludes_degenerate_samples(self):
        steps = [StepCost("s", 1_000, cpu_unit_s=1e-9, gpu_unit_s=1e-9)]
        measured = iter([0.0, 1.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0])

        def measure(ratios):
            return next(measured)

        study = run_monte_carlo(steps, measure, [0.5], n_samples=9, seed=4)
        errors = [s.relative_error for s in study.samples]
        assert sum(math.isnan(e) for e in errors) == 2
        finite = [e for e in errors if not math.isnan(e)]
        expected = float(np.quantile(np.asarray(finite), 0.9))
        assert study.error_quantile(0.9) == pytest.approx(expected)
        assert not math.isnan(study.error_quantile(0.9))

    def test_error_quantile_all_degenerate_is_nan(self):
        steps = [StepCost("s", 1_000, cpu_unit_s=1e-9, gpu_unit_s=1e-9)]
        study = run_monte_carlo(steps, lambda r: 0.0, [0.5], n_samples=5, seed=4)
        assert math.isnan(study.error_quantile(0.9))

    def test_batched_estimates_match_scalar(self):
        steps = random_steps(np.random.default_rng(20), 5)
        study = run_monte_carlo(steps, lambda r: 1.0, [0.5] * 5, n_samples=50, seed=21)
        for sample in study.samples:
            assert sample.estimated_s == pytest.approx(
                estimate_series(steps, sample.ratios).total_s, abs=TOL, rel=TOL
            )

    def test_run_monte_carlo_accepts_cache(self):
        steps = random_steps(np.random.default_rng(22), 4)
        cache = EstimateCache()
        first = run_monte_carlo(steps, lambda r: 1.0, [0.5] * 4, n_samples=20, seed=3, cache=cache)
        misses = cache.misses
        second = run_monte_carlo(steps, lambda r: 1.0, [0.5] * 4, n_samples=20, seed=3, cache=cache)
        assert cache.misses == misses  # every row reused on the second run
        assert [s.estimated_s for s in first.samples] == [
            s.estimated_s for s in second.samples
        ]
