"""Tests for the experiment runners (each paper table / figure at tiny scale)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ExperimentResult,
    improvement,
    run_fig03,
    run_fig04,
    run_fig05,
    run_fig06,
    run_fig07,
    run_fig08,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
    run_fig13,
    run_fig15,
    run_fig16,
    run_fig17,
    run_fig18,
    run_fig19,
    run_fig20,
    run_grouping_study,
    run_headline,
    run_table1,
    run_table3,
)

TINY = 12_000


class TestExperimentResultContainer:
    def test_add_row_and_columns(self):
        result = ExperimentResult("X", "demo")
        result.add_row(a=1, b=2.5)
        result.add_row(a=3, c="z")
        assert result.column_names() == ["a", "b", "c"]
        assert result.column("a") == [1, 3]

    def test_to_text_and_markdown(self):
        result = ExperimentResult("X", "demo")
        result.add_row(metric="time", value=1.234)
        result.add_note("a note")
        text = result.to_text()
        assert "X" in text and "1.234" in text and "a note" in text
        markdown = result.to_markdown()
        assert markdown.startswith("### X") and "| metric | value |" in markdown

    def test_improvement_helper(self):
        assert improvement(2.0, 1.0) == pytest.approx(50.0)
        assert improvement(0.0, 1.0) == 0.0


class TestTableRunners:
    def test_table1_values(self):
        result = run_table1()
        metrics = {row["metric"]: row for row in result.rows}
        assert metrics["# Cores"]["GPU (APU)"] == 400
        assert metrics["Zero copy buffer (MB)"]["CPU (APU)"] == 512

    def test_table3_coarse_slower_with_more_misses(self):
        result = run_table3(build_tuples=TINY)
        rows = {row["variant"]: row for row in result.rows}
        assert rows["PHJ-PL'"]["elapsed_s"] > rows["PHJ-PL"]["elapsed_s"]
        assert rows["PHJ-PL'"]["cache_miss_ratio"] >= rows["PHJ-PL"]["cache_miss_ratio"]


class TestBreakdownAndCalibration:
    def test_fig03_discrete_pays_transfer_and_merge(self):
        result = run_fig03(build_tuples=TINY)
        discrete_dd = next(
            r for r in result.rows
            if r["architecture"] == "discrete" and r["variant"] == "SHJ-DD"
        )
        coupled_dd = next(
            r for r in result.rows
            if r["architecture"] == "coupled" and r["variant"] == "SHJ-DD"
        )
        assert discrete_dd["data_transfer_s"] > 0.0
        assert discrete_dd["merge_s"] > 0.0
        assert coupled_dd["data_transfer_s"] == 0.0
        assert coupled_dd["total_s"] < discrete_dd["total_s"]

    def test_fig04_step_shape(self):
        result = run_fig04(build_tuples=TINY)
        rows = {row["step"]: row for row in result.rows}
        assert rows["b1"]["gpu_speedup"] > 5.0
        assert rows["p1"]["gpu_speedup"] > 5.0
        assert 0.3 < rows["p3"]["gpu_speedup"] < 3.0

    def test_fig05_fig06_ratios_in_range(self):
        for runner in (run_fig05, run_fig06):
            result = runner(build_tuples=TINY)
            assert all(0.0 <= row["cpu_ratio"] <= 1.0 for row in result.rows)
            hash_rows = [r for r in result.rows if r["step"] in ("b1", "p1", "n1")]
            assert all(r["cpu_ratio"] <= 0.2 for r in hash_rows)


class TestModelValidation:
    def test_fig07_estimates_track_measurements(self):
        result = run_fig07(build_tuples=TINY, ratio_step=0.5)
        assert all(row["estimated_s"] > 0 for row in result.rows)
        assert all(row["relative_error_pct"] < 60.0 for row in result.rows)

    def test_fig08_runs(self):
        result = run_fig08(build_tuples=TINY, ratio_step=0.5)
        assert {row["phase"] for row in result.rows} == {"build", "probe"}

    def test_fig09_chosen_close_to_best(self):
        result = run_fig09(build_tuples=8_000, n_samples=30)
        summaries = [r for r in result.rows if r["kind"] == "summary"]
        assert len(summaries) == 2
        for row in summaries:
            assert row["elapsed_s"] <= row["worst_random_s"]
            assert row["elapsed_s"] <= row["best_random_s"] * 1.3


class TestDesignTradeoffs:
    def test_fig10_shared_table_wins(self):
        result = run_fig10(build_tuples=TINY)
        by_key = {(r["variant"], r["hash_table"]): r for r in result.rows}
        for algorithm in ("SHJ-DD", "PHJ-DD"):
            assert (by_key[(algorithm, "shared")]["build_s"]
                    < by_key[(algorithm, "separate")]["build_s"])
            assert by_key[(algorithm, "shared")]["merge_s"] == 0.0

    def test_fig11_lock_overhead_decreases_with_block_size(self):
        result = run_fig11(build_tuples=TINY, block_sizes=(8, 2048), schemes=("DD",))
        rows = {row["block_bytes"]: row for row in result.rows}
        assert rows[2048]["lock_overhead_s"] <= rows[8]["lock_overhead_s"]
        assert rows[2048]["elapsed_s"] <= rows[8]["elapsed_s"]

    def test_fig12_optimised_allocator_wins(self):
        result = run_fig12(build_tuples=TINY, schemes=("DD",))
        by_key = {(r["variant"], r["allocator"]): r["elapsed_s"] for r in result.rows}
        assert by_key[("SHJ-DD", "Ours")] <= by_key[("SHJ-DD", "Basic")]
        assert by_key[("PHJ-DD", "Ours")] <= by_key[("PHJ-DD", "Basic")]

    def test_grouping_study_improves_skewed_run(self):
        result = run_grouping_study(build_tuples=TINY)
        rows = {row["grouping"]: row["elapsed_s"] for row in result.rows}
        assert rows["grouped"] <= rows["ungrouped"] * 1.02


class TestEndToEnd:
    def test_fig13_schemes_ordered(self):
        result = run_fig13(build_sizes=(4_000, 8_000), probe_tuples=TINY)
        for algorithm in ("SHJ", "PHJ"):
            for size in (4_000, 8_000):
                rows = {
                    r["scheme"]: r["elapsed_s"]
                    for r in result.rows
                    if r["algorithm"] == algorithm and r["build_tuples"] == size
                }
                assert rows["PL"] <= rows["CPU-only"]
                assert rows["DD"] <= rows["CPU-only"]

    def test_fig15_probe_grows_with_selectivity(self):
        result = run_fig15(build_tuples=TINY, selectivities=(0.125, 1.0))
        dd_rows = sorted(
            (r for r in result.rows if r["scheme"] == "DD"),
            key=lambda r: r["selectivity_pct"],
        )
        assert dd_rows[0]["probe_s"] <= dd_rows[-1]["probe_s"]
        assert dd_rows[0]["matches"] < dd_rows[-1]["matches"]

    def test_fig16_pl_beats_basicunit(self):
        result = run_fig16(build_tuples=TINY)
        rows = {row["variant"]: row["elapsed_s"] for row in result.rows}
        assert rows["SHJ-PL"] < rows["BasicUnit (SHJ)"]
        assert rows["PHJ-PL"] < rows["BasicUnit (PHJ)"]

    def test_fig17_fig18_ratio_rows(self):
        shj = run_fig17(build_tuples=TINY)
        phj = run_fig18(build_tuples=TINY)
        assert {row["phase"] for row in shj.rows} == {"build", "probe"}
        assert {row["phase"] for row in phj.rows} == {"partition", "build", "probe"}
        for row in shj.rows + phj.rows:
            assert 0.0 <= row["cpu_ratio_pct"] <= 100.0

    def test_fig19_copy_time_only_when_out_of_buffer(self):
        result = run_fig19(sizes=(5_000, 40_000), buffer_bytes=256 * 1024,
                           chunk_tuples=10_000)
        small = [r for r in result.rows if r["tuples_per_relation"] == 5_000]
        large = [r for r in result.rows if r["tuples_per_relation"] == 40_000]
        assert all(r["fits_in_buffer"] for r in small)
        assert all(not r["fits_in_buffer"] for r in large)
        assert all(r["data_copy_s"] > 0 for r in large)

    def test_fig20_contention_falls_with_array_size(self):
        result = run_fig20(array_sizes=(1, 4_096), total_increments=100_000)
        for device in ("cpu", "gpu"):
            rows = {
                r["n_integers"]: r["elapsed_s"]
                for r in result.rows
                if r["device"] == device and r["distribution"] == "uniform"
            }
            assert rows[4_096] < rows[1]

    def test_headline_pl_wins(self):
        result = run_headline(build_tuples=TINY)
        rows = {(r["algorithm"], r["scheme"]): r["elapsed_s"] for r in result.rows}
        for algorithm in ("SHJ", "PHJ"):
            assert rows[(algorithm, "PL")] <= rows[(algorithm, "CPU-only")]
            assert rows[(algorithm, "PL")] <= rows[(algorithm, "GPU-only")]
            assert rows[(algorithm, "PL")] <= rows[(algorithm, "DD")] * 1.001
