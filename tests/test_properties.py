"""Property-based tests (hypothesis) on the core data structures and models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.costmodel import StepCost, estimate_series, pipeline_delays
from repro.data import Relation, expected_match_count
from repro.hashjoin import (
    HashTable,
    bucket_of,
    murmur2,
    murmur2_scalar,
    reference_join,
    vectorized_reference_join,
)
from repro.hashjoin.steps import PerTupleWork
from repro.opencl import (
    Arena,
    BlockAllocator,
    contention_ratio,
    grouped_divergence,
    make_allocator,
    wavefront_divergence,
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

keys_strategy = st.lists(st.integers(min_value=0, max_value=2**31 - 1), min_size=0, max_size=300)
small_keys_strategy = st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=300)


def relation_from(keys: list[int], name: str) -> Relation:
    return Relation(
        keys=np.asarray(keys, dtype=np.int64),
        rids=np.arange(len(keys), dtype=np.int64),
        name=name,
    )


class TestMurmurProperties:
    @SETTINGS
    @given(keys_strategy)
    def test_vectorised_matches_scalar(self, keys):
        array = np.asarray(keys, dtype=np.int64)
        hashed = murmur2(array)
        for key, value in zip(keys, hashed.tolist()):
            assert value == murmur2_scalar(key)

    @SETTINGS
    @given(keys_strategy, st.integers(min_value=1, max_value=1024))
    def test_buckets_in_range(self, keys, n_buckets):
        array = np.asarray(keys, dtype=np.int64)
        buckets = bucket_of(array, n_buckets)
        if len(keys):
            assert buckets.min() >= 0
            assert buckets.max() < n_buckets


class TestJoinProperties:
    @SETTINGS
    @given(small_keys_strategy, small_keys_strategy)
    def test_hash_table_join_matches_reference(self, build_keys, probe_keys):
        build = relation_from(build_keys, "R")
        probe = relation_from(probe_keys, "S")
        n_buckets = 16
        table = HashTable(n_buckets=n_buckets, allocator=make_allocator("block"))
        if len(build):
            table.bulk_insert(build.keys, build.rids, bucket_of(build.keys, n_buckets))
            table.validate()
        result, _ = table.bulk_probe(
            probe.keys, probe.rids, bucket_of(probe.keys, n_buckets)
        ) if len(probe) else (reference_join(build, probe), None)
        expected = reference_join(build, probe)
        assert result.match_count == expected.match_count
        assert result.equals(expected)

    @SETTINGS
    @given(small_keys_strategy, small_keys_strategy)
    def test_vectorized_reference_matches_dict_reference(self, build_keys, probe_keys):
        build = relation_from(build_keys, "R")
        probe = relation_from(probe_keys, "S")
        assert vectorized_reference_join(build, probe).equals(reference_join(build, probe))

    @SETTINGS
    @given(small_keys_strategy, small_keys_strategy)
    def test_expected_match_count_agrees_with_reference(self, build_keys, probe_keys):
        build = relation_from(build_keys, "R")
        probe = relation_from(probe_keys, "S")
        assert expected_match_count(build, probe) == reference_join(build, probe).match_count


class TestDivergenceProperties:
    @SETTINGS
    @given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=0, max_size=500),
           st.sampled_from([16, 32, 64]))
    def test_divergence_bounded(self, workloads, width):
        report = wavefront_divergence(np.asarray(workloads), width=width)
        assert 0.0 <= report.divergence <= 1.0
        assert report.lockstep_work >= report.useful_work - 1e-9

    @SETTINGS
    @given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1, max_size=500))
    def test_grouping_never_increases_divergence(self, workloads):
        array = np.asarray(workloads)
        ungrouped = wavefront_divergence(array).divergence
        grouped, order = grouped_divergence(array, n_groups=16)
        assert grouped.divergence <= ungrouped + 1e-9
        assert sorted(order.tolist()) == list(range(len(workloads)))


class TestContentionProperties:
    @SETTINGS
    @given(st.integers(min_value=1, max_value=100_000),
           st.integers(min_value=1, max_value=100_000),
           st.floats(min_value=0.0, max_value=1.0))
    def test_contention_ratio_bounded(self, threads, targets, probability):
        ratio = contention_ratio(threads, targets, probability)
        assert 0.0 <= ratio < 1.0

    @SETTINGS
    @given(st.integers(min_value=2, max_value=10_000))
    def test_more_targets_never_increase_contention(self, threads):
        few = contention_ratio(threads, 1)
        many = contention_ratio(threads, 1_000)
        assert many <= few


class TestAllocatorProperties:
    @SETTINGS
    @given(st.lists(st.integers(min_value=1, max_value=128), min_size=1, max_size=200),
           st.sampled_from([64, 256, 2048]))
    def test_block_allocations_never_overlap(self, sizes, block_bytes):
        allocator = BlockAllocator(Arena(1 << 22), block_bytes=block_bytes)
        intervals = []
        for i, size in enumerate(sizes):
            offset = allocator.allocate(size, group_id=i % 8)
            intervals.append((offset, offset + size))
        intervals.sort()
        for (a_start, a_end), (b_start, b_end) in zip(intervals, intervals[1:]):
            assert a_end <= b_start
        assert allocator.stats.requests == len(sizes)

    @SETTINGS
    @given(st.integers(min_value=1, max_value=500), st.sampled_from([8, 16, 64]))
    def test_bulk_allocate_accounting(self, n_requests, request_bytes):
        allocator = BlockAllocator(Arena(1 << 22), block_bytes=2048)
        allocator.bulk_allocate(n_requests, request_bytes, n_groups=4)
        assert allocator.stats.requests == n_requests
        assert allocator.stats.allocated_bytes == n_requests * request_bytes
        assert allocator.stats.local_atomics == n_requests
        assert allocator.stats.global_atomics <= n_requests


ratio_lists = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=6
)


def steps_for(n: int) -> list[StepCost]:
    return [
        StepCost(f"s{i}", 1_000, cpu_unit_s=(i + 1) * 1e-9, gpu_unit_s=(6 - i) * 1e-9)
        for i in range(n)
    ]


class TestCostModelProperties:
    @SETTINGS
    @given(ratio_lists)
    def test_estimate_total_is_max_of_devices(self, ratios):
        steps = steps_for(len(ratios))
        estimate = estimate_series(steps, ratios)
        assert estimate.total_s == pytest.approx(
            max(estimate.cpu_total_s, estimate.gpu_total_s)
        )
        assert estimate.cpu_total_s >= 0.0 and estimate.gpu_total_s >= 0.0

    @SETTINGS
    @given(ratio_lists)
    def test_delays_nonnegative(self, ratios):
        steps = steps_for(len(ratios))
        cpu = [s.device_time("cpu", r) for s, r in zip(steps, ratios)]
        gpu = [s.device_time("gpu", r) for s, r in zip(steps, ratios)]
        cpu_delay, gpu_delay = pipeline_delays(cpu, gpu, ratios)
        assert all(d >= 0.0 for d in cpu_delay + gpu_delay)

    @SETTINGS
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_uniform_ratio_estimate_monotone_between_devices(self, ratio):
        steps = steps_for(4)
        estimate = estimate_series(steps, [ratio] * 4)
        cpu_only = estimate_series(steps, [1.0] * 4).total_s
        gpu_only = estimate_series(steps, [0.0] * 4).total_s
        assert estimate.total_s <= max(cpu_only, gpu_only) + 1e-12


class TestPerTupleWorkProperties:
    @SETTINGS
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=200),
           st.integers(min_value=0, max_value=200),
           st.integers(min_value=0, max_value=200))
    def test_range_stats_additive(self, per_tuple, a, b):
        n = len(per_tuple)
        work = PerTupleWork(n_tuples=n, instructions=np.asarray(per_tuple),
                            random_accesses=1.0)
        lo, hi = sorted((min(a, n), min(b, n)))
        mid = (lo + hi) // 2
        left = work.stats_for_range(lo, mid)
        right = work.stats_for_range(mid, hi)
        whole = work.stats_for_range(lo, hi)
        assert left.instructions + right.instructions == pytest.approx(whole.instructions)
        assert left.tuples + right.tuples == whole.tuples
        assert 0.0 <= whole.divergence <= 1.0
