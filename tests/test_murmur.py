"""Unit tests for the MurmurHash2 implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashjoin import bucket_of, murmur2, murmur2_scalar, radix_of


class TestScalarHash:
    def test_deterministic(self):
        assert murmur2_scalar(12345) == murmur2_scalar(12345)

    def test_different_keys_differ(self):
        values = {murmur2_scalar(k) for k in range(100)}
        assert len(values) == 100

    def test_seed_changes_hash(self):
        assert murmur2_scalar(42, seed=1) != murmur2_scalar(42, seed=2)

    def test_fits_32_bits(self):
        for key in (0, 1, 2**31, 2**32 - 1):
            assert 0 <= murmur2_scalar(key) < 2**32


class TestVectorizedHash:
    def test_matches_scalar(self):
        keys = np.array([0, 1, 7, 1024, 2**31 - 1, 2**32 - 1], dtype=np.int64)
        vectorised = murmur2(keys)
        scalar = np.array([murmur2_scalar(int(k)) for k in keys], dtype=np.uint64)
        assert np.array_equal(vectorised, scalar)

    def test_large_batch_no_collision_explosion(self):
        keys = np.arange(100_000, dtype=np.int64)
        hashes = murmur2(keys)
        # MurmurHash2 should have essentially no collisions on distinct keys
        # in a small dense range.
        assert np.unique(hashes).shape[0] >= 99_990

    def test_avalanche_spreads_buckets(self):
        keys = np.arange(64_000, dtype=np.int64)
        buckets = bucket_of(keys, 64)
        counts = np.bincount(buckets, minlength=64)
        assert counts.min() > 0
        assert counts.max() < 2.0 * counts.mean()


class TestBucketOf:
    def test_range(self):
        buckets = bucket_of(np.arange(1_000), 32)
        assert buckets.min() >= 0
        assert buckets.max() < 32

    def test_rejects_non_positive_bucket_count(self):
        with pytest.raises(ValueError):
            bucket_of(np.arange(4), 0)


class TestRadixOf:
    def test_range(self):
        digits = radix_of(np.arange(1_000), bits=4)
        assert digits.min() >= 0
        assert digits.max() < 16

    def test_passes_use_different_bits(self):
        keys = np.arange(10_000)
        first = radix_of(keys, bits=6, pass_index=0)
        second = radix_of(keys, bits=6, pass_index=1)
        assert not np.array_equal(first, second)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            radix_of(np.arange(4), bits=0)
        with pytest.raises(ValueError):
            radix_of(np.arange(4), bits=4, pass_index=-1)
