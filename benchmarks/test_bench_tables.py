"""Benchmarks regenerating Table 1 and Table 3 of the paper."""

from __future__ import annotations

from repro.experiments import run_table1, run_table3


def test_bench_table1_hardware_configuration(run_experiment):
    """Table 1: hardware configuration of the simulated APU."""
    result = run_experiment(run_table1)
    metrics = {row["metric"]: row for row in result.rows}
    assert metrics["# Cores"]["CPU (APU)"] == 4
    assert metrics["# Cores"]["GPU (APU)"] == 400


def test_bench_table3_step_granularity(run_experiment, bench_tuples):
    """Table 3: fine-grained PHJ-PL vs coarse-grained PHJ-PL'."""
    result = run_experiment(run_table3, build_tuples=bench_tuples)
    rows = {row["variant"]: row for row in result.rows}
    assert rows["PHJ-PL'"]["elapsed_s"] > rows["PHJ-PL"]["elapsed_s"]
    assert rows["PHJ-PL'"]["cache_miss_ratio"] >= rows["PHJ-PL"]["cache_miss_ratio"]
