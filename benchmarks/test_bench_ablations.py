"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they isolate individual ingredients of the
reproduction's model and of the paper's design space to show that each one
carries weight:

* the pipelined-delay accounting of Eqs. 4/5 (PL without it under-reports),
* the shared last-level cache of the coupled architecture,
* the wavefront-divergence penalty on skewed data,
* fine-grained per-step ratios vs one ratio per phase (PL vs DD), isolated
  from every other effect by running both on identical executed steps.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core import CoProcessingExecutor, Scheme, plan_ratios, run_join
from repro.costmodel import CalibrationTable
from repro.data import JoinWorkload
from repro.hardware import COUPLED_A8_3870K, Machine, coupled_machine
from repro.hashjoin import HashJoinConfig, SimpleHashJoin


def _shj_series(n_tuples: int, skew: str = "uniform"):
    workload = (
        JoinWorkload.uniform(n_tuples, n_tuples, seed=5)
        if skew == "uniform"
        else JoinWorkload.skewed(skew, n_tuples, n_tuples, seed=5)
    )
    run = SimpleHashJoin(HashJoinConfig()).run(workload.build, workload.probe)
    return run


def test_bench_ablation_pipeline_delays(benchmark, bench_tuples):
    """Dropping the Eq. 4/5 delay accounting must never increase the time."""

    def run():
        shj = _shj_series(bench_tuples)
        machine = coupled_machine()
        executor = CoProcessingExecutor(machine)
        results = {}
        for series in (shj.build.series, shj.probe.series):
            steps = CalibrationTable.from_series([series], machine).step_costs()
            plan = plan_ratios(Scheme.PIPELINED, series.phase, steps)
            with_delays = executor.execute_series(series, plan.ratios, pipelined=True)
            without_delays = executor.execute_series(series, plan.ratios, pipelined=False)
            results[series.phase] = (with_delays.elapsed_s, without_delays.elapsed_s)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    for phase, (with_delays, without_delays) in results.items():
        print(f"{phase}: with delays {with_delays:.6f} s, without {without_delays:.6f} s")
        assert with_delays >= without_delays - 1e-12


def test_bench_ablation_shared_cache(benchmark, bench_tuples):
    """Disabling cross-device cache sharing slows the co-processed join."""

    def run():
        workload = JoinWorkload.uniform(bench_tuples, bench_tuples, seed=5)
        shared = run_join("SHJ", "DD", workload.build, workload.probe,
                          machine=coupled_machine())
        no_sharing_spec = replace(COUPLED_A8_3870K, shared_cache=False,
                                  name="coupled without cache sharing")
        unshared = run_join("SHJ", "DD", workload.build, workload.probe,
                            machine=Machine(no_sharing_spec))
        return shared.total_s, unshared.total_s

    shared_s, unshared_s = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print(f"shared cache {shared_s:.6f} s vs unshared {unshared_s:.6f} s")
    assert shared_s <= unshared_s


def test_bench_ablation_divergence_penalty(benchmark, bench_tuples):
    """Zeroing the GPU divergence penalty removes part of the skewed GPU cost."""

    def run():
        shj = _shj_series(bench_tuples, skew="high-skew")
        default_machine = coupled_machine()
        no_divergence_spec = replace(
            COUPLED_A8_3870K,
            gpu=COUPLED_A8_3870K.gpu.scaled(divergence_penalty=0.0),
            name="coupled without divergence penalty",
        )
        no_divergence = Machine(no_divergence_spec)
        probe = shj.probe.series
        ratios = [0.0] * probe.n_steps  # GPU-only probe: divergence matters most
        with_penalty = CoProcessingExecutor(default_machine).execute_series(probe, ratios)
        without_penalty = CoProcessingExecutor(no_divergence).execute_series(probe, ratios)
        return with_penalty.elapsed_s, without_penalty.elapsed_s

    with_penalty, without_penalty = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    print(f"with divergence penalty {with_penalty:.6f} s, without {without_penalty:.6f} s")
    assert with_penalty > without_penalty


def test_bench_ablation_per_step_ratios(benchmark, bench_tuples):
    """PL's per-step ratios beat the best single DD ratio on the same steps."""

    def run():
        shj = _shj_series(bench_tuples)
        machine = coupled_machine()
        executor = CoProcessingExecutor(machine)
        totals = {"PL": 0.0, "DD": 0.0}
        for series in (shj.build.series, shj.probe.series):
            steps = CalibrationTable.from_series([series], machine).step_costs()
            for scheme in (Scheme.PIPELINED, Scheme.DATA_DIVIDING):
                plan = plan_ratios(scheme, series.phase, steps)
                timing = executor.execute_series(
                    series, plan.ratios, pipelined=scheme.uses_pipelined_delays
                )
                totals["PL" if scheme is Scheme.PIPELINED else "DD"] += timing.elapsed_s
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print(f"PL {totals['PL']:.6f} s vs DD {totals['DD']:.6f} s on identical executed steps")
    assert totals["PL"] <= totals["DD"] * 1.001
