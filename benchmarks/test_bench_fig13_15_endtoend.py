"""Benchmarks for Figures 13-15: end-to-end comparisons."""

from __future__ import annotations

from repro.experiments import run_fig13, run_fig14, run_fig15


def _size_sweep_for(bench_tuples: int) -> tuple[int, ...]:
    return (
        max(bench_tuples // 8, 2_000),
        max(bench_tuples // 4, 4_000),
        max(bench_tuples // 2, 8_000),
        bench_tuples,
    )


def test_bench_fig13_uniform_size_sweep(run_experiment, bench_tuples):
    """Figure 13: elapsed time vs build size on uniform data."""
    sizes = _size_sweep_for(bench_tuples)
    result = run_experiment(
        run_fig13, build_sizes=sizes, probe_tuples=bench_tuples
    )
    for algorithm in ("SHJ", "PHJ"):
        for size in sizes:
            rows = {
                r["scheme"]: r["elapsed_s"]
                for r in result.rows
                if r["algorithm"] == algorithm and r["build_tuples"] == size
            }
            # Co-processing beats single-device execution; PL is the best scheme.
            assert rows["PL"] <= rows["CPU-only"]
            assert rows["DD"] <= rows["CPU-only"]
            assert rows["PL"] <= rows["DD"] * 1.001
        # Elapsed time grows with the build size.
        pl_times = [
            r["elapsed_s"]
            for r in result.rows
            if r["algorithm"] == algorithm and r["scheme"] == "PL"
        ]
        assert pl_times == sorted(pl_times)


def test_bench_fig14_high_skew_size_sweep(run_experiment, bench_tuples):
    """Figure 14: the same sweep on the high-skew data set."""
    sizes = _size_sweep_for(bench_tuples)[:3]
    result = run_experiment(
        run_fig14, build_sizes=sizes, probe_tuples=bench_tuples
    )
    for algorithm in ("SHJ", "PHJ"):
        for size in sizes:
            rows = {
                r["scheme"]: r["elapsed_s"]
                for r in result.rows
                if r["algorithm"] == algorithm and r["build_tuples"] == size
            }
            assert rows["PL"] <= rows["CPU-only"]


def test_bench_fig15_join_selectivity(run_experiment, bench_tuples):
    """Figure 15: PHJ phase breakdown with join selectivity varied."""
    result = run_experiment(run_fig15, build_tuples=bench_tuples)
    # The conventional DD scheme shows the paper's mild probe-time growth with
    # selectivity; for every scheme the overall impact stays marginal because
    # only matching rid pairs are emitted.
    dd_rows = sorted(
        (r for r in result.rows if r["scheme"] == "DD"),
        key=lambda r: r["selectivity_pct"],
    )
    assert dd_rows[0]["probe_s"] <= dd_rows[-1]["probe_s"] * 1.05
    for scheme in ("DD", "OL", "PL"):
        rows = sorted(
            (r for r in result.rows if r["scheme"] == scheme),
            key=lambda r: r["selectivity_pct"],
        )
        assert rows[0]["matches"] < rows[-1]["matches"]
        totals = [r["total_s"] for r in rows]
        assert max(totals) <= min(totals) * 1.25
