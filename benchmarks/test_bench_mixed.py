"""Benchmark gates for the mixed-series batch engine (ISSUE 3 acceptance).

A production planning burst mixes requests over *many* calibrated step
series.  The PR 2 service stacked candidates per fingerprint, so its engine
call count grew with the number of distinct series (plus several raw calls
per PL task); the mixed-series path evaluates one stacked matrix with
per-row coefficient vectors per round, regardless of how many fingerprints
the batch spans.  Two gates pin this down:

* **service throughput** — answering 64 requests spread over 32 distinct
  fingerprints through the mixed strategy must be at least 2x faster than
  the per-fingerprint PR 2 strategy (``PlanService(mixed=False)``), with
  bit-identical plans;
* **raw engine** — one ``batch_totals_mixed`` call over a 32-series mixture
  must beat the equivalent per-series ``batch_totals`` loop, bit-identically.
"""

from __future__ import annotations

import numpy as np

from repro.costmodel import StepCost, batch_totals, batch_totals_mixed, optimize_pl
from repro.service import PlanRequest, PlanService, SharedEstimateCache

#: Concurrent batch size fixed by the acceptance criteria.
N_REQUESTS = 64
#: Distinct step series (fingerprints) behind the 64 requests: every PL
#: request plans a different join, so per-fingerprint stacking degenerates
#: to one engine call per series (plus several per PL task) while the mixed
#: path still issues one call per lockstep round.
N_SERIES = 32
#: Interactive-tier candidate grid.  The paper's offline delta of 0.02 stays
#: the default everywhere else; a latency-bound planning service trades grid
#: resolution for response time, and the coarser grid is exactly the regime
#: the ROADMAP names (the descent becomes overhead-bound: ~20-row candidate
#: columns make the per-call fixed cost, not the row arithmetic, the bill).
DELTA = 0.05


def _series(seed: int, n_steps: int) -> tuple[StepCost, ...]:
    rng = np.random.default_rng(seed)
    return tuple(
        StepCost(
            f"s{i}",
            int(rng.integers(50_000, 250_000)),
            cpu_unit_s=float(rng.uniform(2e-9, 2e-8)),
            gpu_unit_s=float(rng.uniform(1e-9, 2e-8)),
            intermediate_bytes_per_tuple=8.0,
        )
        for i in range(n_steps)
    )


def _mixed_fingerprint_requests() -> list[PlanRequest]:
    """64 requests over 32 distinct 5/6-step series: half PL optimisations
    (one per fingerprint), half OL/DD grid questions."""
    series = [_series(3000 + k, 5 + (k % 2)) for k in range(N_SERIES)]
    requests = []
    for i in range(N_REQUESTS):
        scheme = "PL" if i < N_REQUESTS // 2 else ("OL" if i % 2 else "DD")
        requests.append(
            PlanRequest(
                steps=series[i % N_SERIES],
                scheme=scheme,
                delta=DELTA,
                request_id=f"q{i:02d}",
            )
        )
    return requests


def test_bench_mixed_service_vs_per_fingerprint_gate(
    benchmark, bench_summary, bench_json, best_seconds
):
    """Acceptance: >= 2x for 64 mixed-fingerprint requests vs the PR 2 path."""
    requests = _mixed_fingerprint_requests()

    mixed_responses = benchmark(
        lambda: PlanService(cache=SharedEstimateCache()).plan_many(requests)
    )
    legacy_responses = PlanService(
        cache=SharedEstimateCache(), mixed=False
    ).plan_many(requests)

    # Identical decisions and estimates, not merely close ones.
    for mixed, legacy in zip(mixed_responses, legacy_responses):
        assert mixed.ratios == legacy.ratios
        assert mixed.total_s == legacy.total_s
        assert mixed.estimate.cpu_step_s == legacy.estimate.cpu_step_s
        assert mixed.estimate.gpu_delay_s == legacy.estimate.gpu_delay_s

    mixed_s = best_seconds(
        lambda: PlanService(cache=SharedEstimateCache()).plan_many(requests),
        repeats=5,
    )
    legacy_s = best_seconds(
        lambda: PlanService(cache=SharedEstimateCache(), mixed=False).plan_many(
            requests
        ),
        repeats=3,
    )
    speedup = legacy_s / mixed_s
    bench_summary(
        f"mixed-series service: {N_REQUESTS} requests over {N_SERIES} "
        f"fingerprints in {mixed_s * 1e3:.1f} ms vs {legacy_s * 1e3:.1f} ms "
        f"per-fingerprint ({speedup:.1f}x)"
    )
    bench_json(
        "mixed-service",
        requests=N_REQUESTS,
        fingerprints=N_SERIES,
        mixed_ms=round(mixed_s * 1e3, 3),
        legacy_ms=round(legacy_s * 1e3, 3),
        speedup=round(speedup, 2),
        threshold=2.0,
    )
    assert speedup >= 2.0


def test_bench_mixed_engine_call_count(bench_summary):
    """The mixed strategy's engine calls must not scale with fingerprints.

    32 distinct series behind the batch: the per-fingerprint path pays one
    stacked call per series plus several raw engine calls per PL task; the
    mixed path pays one call for every grid plus one per lockstep descent
    round — bounded by the slowest PL task, not the fingerprint count.
    """
    requests = _mixed_fingerprint_requests()
    service = PlanService(cache=SharedEstimateCache())
    service.plan_many(requests)
    calls = service.stats()["mixed_engine_calls"]
    pl_tasks = {r.task_key: r for r in requests if r.scheme == "PL"}
    worst_descent = max(
        optimize_pl(list(r.steps), r.delta).stats["engine_yields"]
        for r in pl_tasks.values()
    )
    bench_summary(
        f"mixed-series service: {calls} engine calls for "
        f"{len(requests)} requests ({N_SERIES} fingerprints, "
        f"{len(pl_tasks)} PL tasks, slowest descent {worst_descent} rounds)"
    )
    # One call for all grids + one per lockstep descent round.
    assert calls == 1 + worst_descent
    assert calls < N_SERIES


def test_bench_raw_mixed_engine_vs_per_series_loop(
    benchmark, bench_summary, best_seconds
):
    """One batch_totals_mixed call vs a per-series batch_totals loop."""
    rng = np.random.default_rng(17)
    segments = []
    for k in range(N_SERIES):
        steps = _series(4000 + k, 4 + (k % 6))
        segments.append(
            (steps, rng.uniform(0.0, 1.0, size=(40, len(steps))))
        )

    mixed_totals = benchmark(lambda: batch_totals_mixed(segments))
    loop_totals = np.concatenate(
        [batch_totals(list(steps), matrix) for steps, matrix in segments]
    )
    assert np.array_equal(mixed_totals, loop_totals)

    mixed_s = best_seconds(lambda: batch_totals_mixed(segments), repeats=5)
    loop_s = best_seconds(
        lambda: [batch_totals(list(steps), matrix) for steps, matrix in segments],
        repeats=5,
    )
    speedup = loop_s / mixed_s
    bench_summary(
        f"raw mixed engine: {N_SERIES} series x 40 rows in {mixed_s * 1e6:.0f} us "
        f"vs {loop_s * 1e6:.0f} us per-series loop ({speedup:.1f}x)"
    )
    # The win is call-count driven; modest per-call gains are acceptable but
    # the mixed pass must never lose to the loop it replaces.
    assert speedup >= 1.0
