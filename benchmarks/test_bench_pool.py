"""Benchmark gates for the pre-fork serving tier (ISSUE 7 acceptance).

Three properties, over real ``python -m repro serve`` subprocesses with
forked workers:

* **pool throughput** — 8 concurrent clients submitting 64 requests over 32
  distinct fingerprints must run at least 2x faster through ``--workers 4``
  than ``--workers 1`` on a >=4-core machine (the gate relaxes to 1.2x on
  2-3 cores and is skipped below 2 — a pre-fork pool cannot beat one worker
  on one core; the measured numbers are recorded either way);
* **warm restart** — a cache restarted against a store warmed by a forked
  pool must answer >50% of the same workload from the store (cold-start hit
  rate), with bit-identical totals;
* **bit-identical serving** — every plan served by any pool size equals the
  direct library ``plan_many`` answer byte for byte.

Results land in ``BENCH_7.json`` (uploaded as a CI artifact).
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.costmodel import StepCost
from repro.costmodel.cachestore import PersistentEstimateCache
from repro.service import (
    PlanRequest,
    PlanService,
    PoolConfig,
    SharedEstimateCache,
    build_worker_server,
    connect_plan_client,
)

#: Concurrency and workload shape fixed by the acceptance criteria.
N_CLIENTS = 8
N_REQUESTS = 64
N_SERIES = 32
#: Interactive-tier grid (latency-bound serving trades resolution for time).
DELTA = 0.05


def _series(seed: int, n_steps: int) -> tuple[StepCost, ...]:
    rng = np.random.default_rng(seed)
    return tuple(
        StepCost(
            f"s{i}",
            int(rng.integers(50_000, 250_000)),
            cpu_unit_s=float(rng.uniform(2e-9, 2e-8)),
            gpu_unit_s=float(rng.uniform(1e-9, 2e-8)),
            intermediate_bytes_per_tuple=8.0,
        )
        for i in range(n_steps)
    )


def _requests() -> list[PlanRequest]:
    """64 requests over 32 distinct 5/6-step series, PL/OL/DD mixed."""
    series = [_series(7000 + k, 5 + (k % 2)) for k in range(N_SERIES)]
    requests = []
    for i in range(N_REQUESTS):
        scheme = "PL" if i < N_REQUESTS // 2 else ("OL" if i % 2 else "DD")
        requests.append(
            PlanRequest(
                steps=series[i % N_SERIES],
                scheme=scheme,
                delta=DELTA,
                request_id=f"q{i:02d}",
            )
        )
    return requests


def _client_slices(requests: list[PlanRequest]) -> list[list[PlanRequest]]:
    per_client = len(requests) // N_CLIENTS
    return [
        requests[k * per_client : (k + 1) * per_client] for k in range(N_CLIENTS)
    ]


def _spawn_serve(sock_path: str, *extra: str) -> subprocess.Popen:
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--unix", sock_path,
         "--window-ms", "2", "--max-batch", str(N_REQUESTS), *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )


def _await_socket(proc: subprocess.Popen, sock_path: str,
                  timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if os.path.exists(sock_path):
            return
        if proc.poll() is not None:
            raise AssertionError(
                f"serve subprocess died during startup: {proc.stderr.read()}"
            )
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("serve subprocess never bound its socket")


def _drive_clients(sock_path: str, requests: list[PlanRequest]):
    """8 concurrent clients over the unix socket; returns (s, results)."""
    slices = _client_slices(requests)

    async def go():
        clients = await asyncio.gather(
            *(
                connect_plan_client(sock_path, client_id=f"client-{k}")
                for k in range(N_CLIENTS)
            )
        )
        try:
            start = time.perf_counter()
            batches = await asyncio.gather(
                *(
                    client.plan_many(chunk)
                    for client, chunk in zip(clients, slices)
                )
            )
            elapsed = time.perf_counter() - start
        finally:
            for client in clients:
                await client.close()
        return elapsed, [result for batch in batches for result in batch]

    return asyncio.run(go())


def _serve_once(workers: int, *extra: str):
    """Boot a cold pool subprocess, drive the workload, drain via SIGTERM."""
    with tempfile.TemporaryDirectory(dir="/tmp") as tmp:
        sock_path = os.path.join(tmp, "bench.sock")
        proc = _spawn_serve(sock_path, "--workers", str(workers), *extra)
        try:
            _await_socket(proc, sock_path)
            elapsed, results = _drive_clients(sock_path, _requests())
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, f"serve exited {proc.returncode}: {err}"
    return elapsed, results


def _assert_bit_identical(results, label: str) -> None:
    direct = PlanService(cache=SharedEstimateCache()).plan_many(_requests())
    by_id = {response.request_id: response for response in direct}
    assert len(results) == N_REQUESTS, label
    for result in results:
        ref = by_id[result.response.request_id]
        assert result.response.ratios == ref.ratios, label
        assert result.response.total_s == ref.total_s, label
        assert result.response.estimate.cpu_step_s == ref.estimate.cpu_step_s, label
        assert result.response.estimate.gpu_step_s == ref.estimate.gpu_step_s, label
        assert result.response.estimate.cpu_delay_s == ref.estimate.cpu_delay_s, label
        assert result.response.estimate.gpu_delay_s == ref.estimate.gpu_delay_s, label


def test_bench_pool_speedup_gate(bench_summary, bench_json7):
    """Acceptance: 8 clients x 64 requests, --workers 4 vs --workers 1.

    >=2x on a >=4-core machine; 1.2x on 2-3 cores; measured-and-skipped on a
    single core (a pre-fork pool cannot outrun one worker on one CPU).
    """
    single_s = float("inf")
    single_results = None
    for _ in range(2):
        elapsed, results = _serve_once(1)
        if elapsed < single_s:
            single_s, single_results = elapsed, results
    pooled_s = float("inf")
    pooled_results = None
    for _ in range(2):
        elapsed, results = _serve_once(4)
        if elapsed < pooled_s:
            pooled_s, pooled_results = elapsed, results

    # Bit-identical serving for both pool sizes, before any speed claims.
    _assert_bit_identical(single_results, "workers=1")
    _assert_bit_identical(pooled_results, "workers=4")

    cpus = os.cpu_count() or 1
    speedup = single_s / pooled_s
    threshold = 2.0 if cpus >= 4 else (1.2 if cpus >= 2 else None)
    bench_summary(
        f"pre-fork pool: {N_CLIENTS} clients x {N_REQUESTS} requests in "
        f"{pooled_s * 1e3:.1f} ms with 4 workers vs {single_s * 1e3:.1f} ms "
        f"with 1 ({speedup:.2f}x on {cpus} CPUs)"
    )
    bench_json7(
        "pool-speedup",
        clients=N_CLIENTS,
        requests=N_REQUESTS,
        workers_1_ms=round(single_s * 1e3, 3),
        workers_4_ms=round(pooled_s * 1e3, 3),
        speedup=round(speedup, 3),
        cpu_count=cpus,
        threshold=threshold,
    )
    if threshold is None:
        pytest.skip(
            f"pool speedup gate needs >=2 CPUs (this machine has {cpus}); "
            f"measured {speedup:.2f}x and recorded it in BENCH_7.json"
        )
    assert speedup >= threshold, (
        f"--workers 4 must be >={threshold}x faster than --workers 1 on "
        f"{cpus} CPUs; measured {speedup:.2f}x"
    )


def test_bench_pool_warm_restart_gate(bench_summary, bench_json7):
    """Acceptance: cold-start hit rate >50% after restart against a store
    warmed by a forked 2-worker pool, with bit-identical answers."""
    with tempfile.TemporaryDirectory(dir="/tmp") as tmp:
        store_path = os.path.join(tmp, "cache.db")
        sock_path = os.path.join(tmp, "warm.sock")

        # Warm the store through a real forked pool, then drain it.
        proc = _spawn_serve(
            sock_path, "--workers", "2", "--cache-store", store_path
        )
        try:
            _await_socket(proc, sock_path)
            _, served = _drive_clients(sock_path, _requests())
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, f"serve exited {proc.returncode}: {err}"
        _assert_bit_identical(served, "warming pool")

        # "Restart": a brand-new process-equivalent stack on the same store.
        config = PoolConfig(workers=1, unix_path=sock_path,
                            cache_store=store_path)
        server, service = build_worker_server(config)
        cache = service.cache
        assert isinstance(cache, PersistentEstimateCache), (
            "warmed store failed to open on restart"
        )
        restarted = service.plan_many(_requests())
        lookups = cache.hits + cache.misses
        hit_rate = cache.hits / lookups if lookups else 0.0
        service.close()

    direct = PlanService(cache=SharedEstimateCache()).plan_many(_requests())
    by_id = {r.request_id: r for r in direct}
    for response in restarted:
        ref = by_id[response.request_id]
        assert response.ratios == ref.ratios
        assert response.total_s == ref.total_s

    bench_summary(
        f"persistent cache: restart against warmed store answered "
        f"{cache.hits}/{lookups} lookups from cache "
        f"({hit_rate:.0%} hit rate, {cache.store_hits} from the store)"
    )
    bench_json7(
        "warm-restart-hit-rate",
        lookups=lookups,
        hits=cache.hits,
        store_hits=cache.store_hits,
        hit_rate=round(hit_rate, 4),
        threshold=0.5,
    )
    assert hit_rate > 0.5, (
        f"cold start against a warmed store must answer >50% of lookups "
        f"from cache; measured {hit_rate:.0%}"
    )
