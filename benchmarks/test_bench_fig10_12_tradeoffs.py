"""Benchmarks for Figures 10-12: hash-table sharing and the memory allocator."""

from __future__ import annotations

from repro.experiments import run_fig10, run_fig11, run_fig12


def test_bench_fig10_shared_vs_separate_tables(run_experiment, bench_tuples):
    """Figure 10: DD build phase with separate vs shared hash tables."""
    result = run_experiment(run_fig10, build_tuples=bench_tuples)
    rows = {(r["variant"], r["hash_table"]): r for r in result.rows}
    for variant in ("SHJ-DD", "PHJ-DD"):
        shared = rows[(variant, "shared")]
        separate = rows[(variant, "separate")]
        assert shared["build_s"] < separate["build_s"]
        assert shared["merge_s"] == 0.0
        assert separate["merge_s"] > 0.0


def test_bench_fig11_allocator_block_size(run_experiment, bench_tuples):
    """Figure 11: PHJ elapsed time and lock overhead vs allocation block size."""
    result = run_experiment(
        run_fig11,
        build_tuples=bench_tuples,
        block_sizes=(8, 64, 512, 2048, 32768),
        schemes=("DD", "PL"),
    )
    for scheme in ("DD", "PL"):
        rows = {
            r["block_bytes"]: r for r in result.rows if r["variant"] == f"PHJ-{scheme}"
        }
        # Lock overhead shrinks with the block size; beyond ~2 KB it is stable.
        assert rows[2048]["lock_overhead_s"] <= rows[8]["lock_overhead_s"]
        assert rows[2048]["elapsed_s"] <= rows[8]["elapsed_s"]
        assert abs(rows[32768]["elapsed_s"] - rows[2048]["elapsed_s"]) <= (
            0.15 * rows[2048]["elapsed_s"] + 1e-9
        )


def test_bench_fig12_basic_vs_optimised_allocator(run_experiment, bench_tuples):
    """Figure 12: basic vs optimised (block) memory allocator."""
    result = run_experiment(run_fig12, build_tuples=bench_tuples)
    by_key = {(r["variant"], r["allocator"]): r["elapsed_s"] for r in result.rows}
    for variant in ("SHJ-DD", "SHJ-OL", "SHJ-PL", "PHJ-DD", "PHJ-OL", "PHJ-PL"):
        assert by_key[(variant, "Ours")] <= by_key[(variant, "Basic")]
