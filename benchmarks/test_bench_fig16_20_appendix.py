"""Benchmarks for the appendix experiments: Figures 16-20."""

from __future__ import annotations

from repro.experiments import (
    run_fig16,
    run_fig17,
    run_fig18,
    run_fig19,
    run_fig20,
)


def test_bench_fig16_basicunit_vs_fine_grained(run_experiment, bench_tuples):
    """Figure 16: BasicUnit scheduling vs fine-grained co-processing."""
    result = run_experiment(run_fig16, build_tuples=bench_tuples)
    rows = {row["variant"]: row["elapsed_s"] for row in result.rows}
    assert rows["SHJ-PL"] < rows["BasicUnit (SHJ)"]
    assert rows["PHJ-PL"] < rows["BasicUnit (PHJ)"]


def test_bench_fig17_basicunit_ratios_shj(run_experiment, bench_tuples):
    """Figure 17: per-phase ratios of SHJ under BasicUnit."""
    result = run_experiment(run_fig17, build_tuples=bench_tuples)
    assert {row["phase"] for row in result.rows} == {"build", "probe"}
    assert all(0.0 <= row["cpu_ratio_pct"] <= 100.0 for row in result.rows)


def test_bench_fig18_basicunit_ratios_phj(run_experiment, bench_tuples):
    """Figure 18: per-phase ratios of PHJ under BasicUnit."""
    result = run_experiment(run_fig18, build_tuples=bench_tuples)
    assert {row["phase"] for row in result.rows} == {"partition", "build", "probe"}


def test_bench_fig19_out_of_buffer_joins(run_experiment, bench_tuples):
    """Figure 19: joins larger than the zero copy buffer."""
    sizes = (bench_tuples // 2, bench_tuples, bench_tuples * 2)
    result = run_experiment(
        run_fig19, sizes=sizes, buffer_bytes=2 * 1024 * 1024, chunk_tuples=bench_tuples
    )
    out_of_buffer = [r for r in result.rows if not r["fits_in_buffer"]]
    assert out_of_buffer, "the sweep must include at least one out-of-buffer point"
    for row in out_of_buffer:
        assert row["partition_s"] > 0.0
        assert row["data_copy_s"] > 0.0
        # The staging copy stays a small fraction of the total (paper: ~4%).
        assert row["copy_pct"] < 30.0
    # Total time grows with the relation size for each pair-join variant.
    for variant in ("SHJ-PL", "PHJ-PL"):
        times = [r["total_s"] for r in result.rows if r["pair_join"] == variant]
        assert times == sorted(times)


def test_bench_fig20_latch_microbenchmark(run_experiment):
    """Figure 20: locking overhead on the CPU and the GPU."""
    result = run_experiment(
        run_fig20,
        array_sizes=(1, 16, 256, 4_096, 65_536, 1_048_576, 4_194_304),
        total_increments=1_000_000,
    )
    for device in ("cpu", "gpu"):
        uniform = {
            r["n_integers"]: r["elapsed_s"]
            for r in result.rows
            if r["device"] == device and r["distribution"] == "uniform"
        }
        # Contention cost falls as the number of latch targets grows.
        assert uniform[4_096] < uniform[1]
        # Beyond the cache size the high-skew run is no slower than uniform
        # (locality compensates the latches), as the paper observes.
        high_skew = {
            r["n_integers"]: r["elapsed_s"]
            for r in result.rows
            if r["device"] == device and r["distribution"] == "high-skew"
        }
        assert high_skew[4_194_304] <= uniform[4_194_304] * 1.02
