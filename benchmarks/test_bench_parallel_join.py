"""Parallel pair-execution gates (ISSUE 8).

After radix partitioning, the per-pair simple hash joins are independent and
``parallel=True`` runs them on the shared process pool, bit-identical to the
serial loop.  The gates here:

* **Parallel pair speedup** — ``CoarseGrainedPHJ(parallel=True)`` versus the
  serial reference on a many-small-partitions shape (per-pair Python
  overhead dominates, so the pair loop is the hot path, not the driver-side
  partitioning).  The coarse variant is the natural gate vehicle: its
  per-pair payload back to the driver is four scalars plus the pair's rid
  matches, so the pool's win is not drowned in serialising per-tuple step
  arrays.  Gate >= 2x on 4 workers; CPU-gated because the container running
  the tier-1 suite may expose a single core, while the CI runner has four.
* **Fine-grained speedup (recorded, not gated)** — the same shape through
  ``PartitionedHashJoin(parallel=True)``, whose per-tuple step series must
  travel back over IPC; the measured ratio is recorded so the artifact
  shows both variants' scaling.
* **Robustness accounting** — an adversarial heavy-hitter external join
  records its spill/recursion/role-reversal counters and the in-buffer
  budget headroom (recorded, not gated: the invariants themselves are
  pinned by ``tests/test_parallel_join.py``).

Every gate records its measured numbers in ``BENCH_8.json`` (uploaded as a
CI artifact) besides the human-readable summary line.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data.relation import Relation
from repro.experiments.fig19_external import small_buffer_machine
from repro.hashjoin import (
    CoarseGrainedPHJ,
    ExternalHashJoin,
    PartitionedHashJoin,
    shared_pair_pool,
    vectorized_reference_join,
)

#: Many small partitions: per-pair Python overhead dominates the serial run,
#: which is exactly the work the pool spreads out.  4096 pairs of ~100 tuples.
PARALLEL_TUPLES = 400_000
TARGET_PARTITION_TUPLES = 125
GATE_WORKERS = 4
GATE_SPEEDUP = 2.0

needs_gate_cpus = pytest.mark.skipif(
    (os.cpu_count() or 1) < GATE_WORKERS,
    reason=f"speedup gate needs >= {GATE_WORKERS} CPUs",
)


def _bench_relations() -> tuple[Relation, Relation]:
    rng = np.random.default_rng(8)
    build = Relation.from_keys(
        rng.integers(0, PARALLEL_TUPLES, PARALLEL_TUPLES, dtype=np.int64), name="R"
    )
    probe = Relation.from_keys(
        rng.integers(0, PARALLEL_TUPLES, PARALLEL_TUPLES, dtype=np.int64), name="S"
    )
    return build, probe


@needs_gate_cpus
def test_bench_parallel_pair_speedup(bench_summary, bench_json8, best_seconds):
    """Acceptance: >= 2x over the serial pair loop on 4 pool workers."""
    build, probe = _bench_relations()

    serial_join = CoarseGrainedPHJ(
        target_partition_tuples=TARGET_PARTITION_TUPLES, parallel=False
    )
    pooled_join = CoarseGrainedPHJ(
        target_partition_tuples=TARGET_PARTITION_TUPLES,
        parallel=True,
        n_workers=GATE_WORKERS,
    )

    # Parity on the benchmark shape, and pool warm-up (fork + import cost
    # lands here, not inside the timed runs).
    serial_run = serial_join.run(build, probe)
    pooled_run = pooled_join.run(build, probe)
    assert serial_run.result.equals(pooled_run.result)
    assert serial_run.total_table_bytes == pooled_run.total_table_bytes

    serial_s = best_seconds(lambda: serial_join.run(build, probe))
    pooled_s = best_seconds(lambda: pooled_join.run(build, probe))
    speedup = serial_s / pooled_s

    bench_summary(
        f"parallel-pairs: {PARALLEL_TUPLES} tuples x "
        f"{TARGET_PARTITION_TUPLES}-tuple partitions, {GATE_WORKERS} workers: "
        f"serial {serial_s:.3f}s, pooled {pooled_s:.3f}s -> {speedup:.2f}x "
        f"(gate >= {GATE_SPEEDUP}x)"
    )
    bench_json8(
        "parallel-pairs",
        serial_s=serial_s,
        parallel_s=pooled_s,
        speedup=speedup,
        threshold=GATE_SPEEDUP,
        n_workers=GATE_WORKERS,
        tuples=PARALLEL_TUPLES,
        target_partition_tuples=TARGET_PARTITION_TUPLES,
        passed=speedup >= GATE_SPEEDUP,
    )
    assert speedup >= GATE_SPEEDUP


@needs_gate_cpus
def test_bench_fine_grained_parallel_recorded(bench_summary, bench_json8, best_seconds):
    """Record (not gate) the fine-grained variant's pool scaling.

    ``PartitionedHashJoin`` ships every pair's per-tuple step series back to
    the driver, so its ratio is IPC-bound; the artifact records it alongside
    the gated coarse number to make that trade-off visible."""
    build, probe = _bench_relations()

    serial_join = PartitionedHashJoin(
        target_partition_tuples=TARGET_PARTITION_TUPLES, parallel=False
    )
    pooled_join = PartitionedHashJoin(
        target_partition_tuples=TARGET_PARTITION_TUPLES,
        parallel=True,
        n_workers=GATE_WORKERS,
    )
    serial_run = serial_join.run(build, probe)
    pooled_run = pooled_join.run(build, probe)
    assert serial_run.result.equals(pooled_run.result)

    serial_s = best_seconds(lambda: serial_join.run(build, probe), repeats=2)
    pooled_s = best_seconds(lambda: pooled_join.run(build, probe), repeats=2)
    speedup = serial_s / pooled_s

    bench_summary(
        f"parallel-pairs-fine: serial {serial_s:.3f}s, pooled {pooled_s:.3f}s "
        f"-> {speedup:.2f}x (recorded, not gated)"
    )
    bench_json8(
        "parallel-pairs-fine",
        serial_s=serial_s,
        parallel_s=pooled_s,
        speedup=speedup,
        n_workers=GATE_WORKERS,
        gated=False,
    )
    shared_pair_pool(GATE_WORKERS).close()


def test_bench_robust_external_join(bench_summary, bench_json8):
    """Record the robustness counters of an adversarial external join.

    A heavy-hitter key plus a uniform tail forces recursion *and* spilling;
    the run must stay within the simulated buffer budget and reproduce the
    reference join exactly (the budget/parity invariants are gated in the
    unit suite — this records the measured shape for the artifact)."""
    rng = np.random.default_rng(80)
    keys = np.concatenate(
        [
            np.full(3_000, 7, dtype=np.int64),
            rng.integers(0, 100_000, 60_000, dtype=np.int64),
        ]
    )
    build = Relation.from_keys(keys, name="R")
    probe = Relation.from_keys(rng.permutation(keys), name="S")
    buffer_bytes = 64 * 1024

    def joiner(b: Relation, p: Relation):
        return (len(b) + len(p)) * 1e-9, vectorized_reference_join(b, p)

    external = ExternalHashJoin(
        joiner, machine=small_buffer_machine(buffer_bytes), chunk_tuples=16_000
    )
    run = external.run(build, probe)
    assert run.result.equals(vectorized_reference_join(build, probe))
    headroom = (
        buffer_bytes - run.stats.max_in_buffer_bytes * external.overhead_factor
    )
    assert headroom >= 0

    bench_summary(
        f"robust-external: {len(build)}x{len(probe)} tuples, "
        f"{buffer_bytes // 1024} KB buffer: {run.stats.recursive_splits} splits "
        f"(depth {run.stats.max_pair_depth}), {run.stats.spilled_pairs} spills, "
        f"{run.stats.role_reversals} role reversals, "
        f"budget headroom {headroom:.0f} B"
    )
    bench_json8(
        "robust-external",
        buffer_bytes=buffer_bytes,
        n_super_partitions=run.n_super_partitions,
        recursive_splits=run.stats.recursive_splits,
        max_pair_depth=run.stats.max_pair_depth,
        spilled_pairs=run.stats.spilled_pairs,
        role_reversals=run.stats.role_reversals,
        max_in_buffer_bytes=run.stats.max_in_buffer_bytes,
        budget_headroom_bytes=headroom,
        matches=run.result.match_count,
    )
