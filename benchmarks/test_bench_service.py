"""Benchmark gate for the multi-query plan service (ISSUE 2 acceptance).

A planning service fronting the cost model sees bursts of concurrent
optimisation requests, many of them over the same few calibrated step series
(clients re-asking what-if questions, retries, dashboards refreshing).  The
gate pins the two properties that make the service worth having over calling
``optimize_scheme`` once per request:

* **throughput** — answering 32 mixed PL/OL/DD requests through
  ``PlanService.plan_many`` (fingerprint grouping + stacked batch
  evaluation + deduplication) must be at least 3x faster than 32 sequential
  ``optimize_scheme`` calls, while returning bit-identical ratios and
  estimates;
* **cache warm-up** — replaying the same workload against one service must
  be answered mostly from the shared estimate cache (>50% hit rate).
"""

from __future__ import annotations

import numpy as np

from repro.costmodel import StepCost, optimize_scheme
from repro.service import PlanRequest, PlanService, SharedEstimateCache

#: Step count per series: a build+probe SHJ join like the optimizer bench.
N_STEPS = 8
#: Concurrent batch size fixed by the acceptance criteria.
N_REQUESTS = 32
#: Distinct join workloads behind the 32 requests (concurrent traffic
#: repeats the same few fingerprints).
N_SERIES = 2

SCHEMES = ("PL", "OL", "DD")


def _series(seed: int) -> tuple[StepCost, ...]:
    rng = np.random.default_rng(seed)
    return tuple(
        StepCost(
            f"s{i}",
            int(rng.integers(50_000, 250_000)),
            cpu_unit_s=float(rng.uniform(2e-9, 2e-8)),
            gpu_unit_s=float(rng.uniform(1e-9, 2e-8)),
            intermediate_bytes_per_tuple=8.0,
        )
        for i in range(N_STEPS)
    )


def _mixed_requests() -> list[PlanRequest]:
    series = [_series(seed) for seed in (2013, 2014, 2015)[:N_SERIES]]
    return [
        PlanRequest(
            steps=series[(i // len(SCHEMES)) % N_SERIES],
            scheme=SCHEMES[i % len(SCHEMES)],
            request_id=f"q{i:02d}",
        )
        for i in range(N_REQUESTS)
    ]


def test_bench_service_throughput_gate(benchmark, bench_summary, bench_json, best_seconds):
    """Acceptance: >= 3x for 32 mixed requests vs sequential optimisation."""
    requests = _mixed_requests()

    responses = benchmark(
        lambda: PlanService(cache=SharedEstimateCache()).plan_many(requests)
    )
    sequential = [
        optimize_scheme(r.scheme, list(r.steps), r.delta) for r in requests
    ]

    # Identical decisions and estimates, not merely close ones.
    for response, reference in zip(responses, sequential):
        assert response.ratios == reference.ratios
        assert response.total_s == reference.total_s
        assert response.estimate.cpu_step_s == reference.estimate.cpu_step_s
        assert response.estimate.gpu_delay_s == reference.estimate.gpu_delay_s

    service_s = best_seconds(
        lambda: PlanService(cache=SharedEstimateCache()).plan_many(requests),
        repeats=5,
    )
    sequential_s = best_seconds(
        lambda: [optimize_scheme(r.scheme, list(r.steps), r.delta) for r in requests],
        repeats=3,
    )
    speedup = sequential_s / service_s
    bench_summary(
        f"plan service: {N_REQUESTS} mixed requests in {service_s * 1e3:.1f} ms "
        f"vs {sequential_s * 1e3:.1f} ms sequential ({speedup:.1f}x)"
    )
    bench_json(
        "service-throughput",
        requests=N_REQUESTS,
        service_ms=round(service_s * 1e3, 3),
        sequential_ms=round(sequential_s * 1e3, 3),
        speedup=round(speedup, 2),
        threshold=3.0,
    )
    assert speedup >= 3.0


def test_bench_service_repeated_workload_hit_rate(bench_summary):
    """Acceptance: a repeated workload is served >50% from the shared cache.

    The first pass pays the engine for every stacked grid row; each replay
    is answered from the shared cache, so sustained traffic (two replays
    here) pushes the hit rate well past one half.
    """
    requests = _mixed_requests()
    service = PlanService(cache=SharedEstimateCache())

    first = service.plan_many(requests)
    for _ in range(2):
        repeat = service.plan_many(requests)
        for a, b in zip(first, repeat):
            assert a.ratios == b.ratios
            assert a.total_s == b.total_s

    stats = service.stats()
    hit_rate = stats["cache"]["hit_rate"]
    bench_summary(
        f"repeated workload: hit rate {hit_rate:.1%} "
        f"({stats['cache']['hits']} hits / {stats['cache']['misses']} misses), "
        f"{stats['requests_deduplicated']} of {stats['requests_served']} "
        "requests deduplicated"
    )
    assert hit_rate > 0.5
