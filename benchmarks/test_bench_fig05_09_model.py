"""Benchmarks for Figures 5-9: optimal ratios and cost-model validation."""

from __future__ import annotations

from repro.experiments import (
    run_fig05,
    run_fig06,
    run_fig07,
    run_fig08,
    run_fig09,
)


def test_bench_fig05_shj_pl_ratios(run_experiment, bench_tuples):
    """Figure 5: optimal per-step ratios of SHJ-PL."""
    result = run_experiment(run_fig05, build_tuples=bench_tuples)
    hash_rows = [r for r in result.rows if r["step"] in ("b1", "p1")]
    # The GPU takes (almost) all of the hash-computation steps.
    assert all(r["cpu_ratio"] <= 0.2 for r in hash_rows)
    assert all(0.0 <= r["cpu_ratio"] <= 1.0 for r in result.rows)


def test_bench_fig06_phj_pl_ratios(run_experiment, bench_tuples):
    """Figure 6: optimal per-step ratios of PHJ-PL."""
    result = run_experiment(run_fig06, build_tuples=bench_tuples)
    assert {r["phase"] for r in result.rows} == {"partition", "build", "probe"}
    hash_rows = [r for r in result.rows if r["step"] in ("n1", "b1", "p1")]
    assert all(r["cpu_ratio"] <= 0.2 for r in hash_rows)


def test_bench_fig07_dd_ratio_sweep(run_experiment, bench_tuples):
    """Figure 7: estimated vs measured SHJ-DD time over the ratio sweep."""
    result = run_experiment(run_fig07, build_tuples=bench_tuples, ratio_step=0.1)
    # The estimate never exceeds the measurement by much: the model omits
    # latch and divergence overheads, so it sits at or below the measurement.
    for row in result.rows:
        assert row["estimated_s"] <= row["measured_s"] * 1.10
    # The sweep exhibits a minimum strictly inside (0, 1): co-processing wins.
    for phase in ("build", "probe"):
        rows = [r for r in result.rows if r["phase"] == phase]
        best = min(rows, key=lambda r: r["measured_s"])
        assert 0.0 < best["cpu_ratio_pct"] < 100.0


def test_bench_fig08_pl_special_case(run_experiment, bench_tuples):
    """Figure 8: PL special case (b1/p1 on the GPU, shared ratio elsewhere)."""
    result = run_experiment(run_fig08, build_tuples=bench_tuples, ratio_step=0.1)
    assert {r["phase"] for r in result.rows} == {"build", "probe"}
    assert all(row["estimated_s"] > 0.0 for row in result.rows)


def test_bench_fig09_monte_carlo(run_experiment):
    """Figure 9: Monte Carlo CDF vs the cost model's chosen ratios."""
    result = run_experiment(run_fig09, build_tuples=30_000, n_samples=100)
    summaries = [r for r in result.rows if r["kind"] == "summary"]
    assert len(summaries) == 2
    for row in summaries:
        # The chosen setting is close to the best random one (paper: "very close").
        assert row["elapsed_s"] <= row["best_random_s"] * 1.25
        assert row["fraction"] >= 0.8  # beats at least 80% of random settings
