"""Chaos gates for the failure-recovery plane (ISSUE 10 acceptance).

Two gates, both recorded in ``BENCH_10.json`` for the CI ``chaos-gate`` job:

* **failover success rate** — seeded random fault schedules against a
  2-worker pool: every request must be answered exactly once and
  bit-identically to the fault-free reference (rate == 1.0, by request
  count), with the retry/respawn counters recorded alongside.
* **forked-worker failover latency** — a real ``repro serve`` subprocess
  whose worker 0 is SIGKILLed with requests in flight: the retried batch
  must complete with every plan bit-identical, and the recovery overhead
  (faulted minus fault-free wall-clock) is recorded and bounded.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro import faults
from repro.costmodel import StepCost
from repro.faults import FaultPlan, FaultSpec
from repro.service import (
    PlanRequest,
    PlanService,
    PoolConfig,
    RetryPolicy,
    SharedEstimateCache,
    WorkerPool,
    connect_retrying_client,
)

CHAOS_SEEDS = tuple(range(300, 305))
N_REQUESTS = 24
N_CLIENTS = 4
#: Generous ceiling on the recovery overhead of one SIGKILLed worker
#: (respawn + reconnect + one retried batch) — a hang fails long before.
MAX_FAILOVER_EXTRA_S = 10.0


def _requests(n: int, seed: int) -> list[PlanRequest]:
    rng = np.random.default_rng(seed)
    series = []
    for k in range(8):
        series.append(
            tuple(
                StepCost(
                    f"s{i}",
                    int(rng.integers(10_000, 200_000)),
                    cpu_unit_s=float(rng.uniform(1e-9, 5e-8)),
                    gpu_unit_s=float(rng.uniform(1e-9, 5e-8)),
                    intermediate_bytes_per_tuple=float(rng.uniform(0.0, 16.0)),
                )
                for i in range(4 + (k % 3))
            )
        )
    schemes = ("PL", "OL", "DD")
    return [
        PlanRequest(
            steps=series[i % len(series)],
            scheme=schemes[i % 3],
            request_id=f"q{i:02d}",
        )
        for i in range(n)
    ]


def _identical(result, reference) -> bool:
    ref = reference[result.response.request_id]
    return (
        result.response.ratios == ref.ratios
        and result.response.total_s == ref.total_s
        and result.response.estimate.cpu_step_s == ref.estimate.cpu_step_s
        and result.response.estimate.gpu_step_s == ref.estimate.gpu_step_s
        and result.response.estimate.cpu_delay_s == ref.estimate.cpu_delay_s
        and result.response.estimate.gpu_delay_s == ref.estimate.gpu_delay_s
    )


def _drive_retrying(sock_path: str, requests: list[PlanRequest], seed: int):
    """Serve ``requests`` through ``N_CLIENTS`` retrying clients."""
    per_client = len(requests) // N_CLIENTS

    async def go():
        clients = [
            connect_retrying_client(
                path=sock_path,
                client_id=f"chaos-{k}",
                policy=RetryPolicy(
                    max_attempts=8, base_s=0.01, cap_s=0.1, seed=seed * 10 + k
                ),
            )
            for k in range(N_CLIENTS)
        ]
        try:
            batches = await asyncio.gather(
                *(
                    client.plan_many(
                        requests[k * per_client : (k + 1) * per_client]
                    )
                    for k, client in enumerate(clients)
                )
            )
        finally:
            for client in clients:
                await client.close()
        results = [result for batch in batches for result in batch]
        retries = sum(client.stats()["retries"] for client in clients)
        return results, retries

    return asyncio.run(go())


def _run_schedule(sock_path: str, requests: list[PlanRequest], seed: int):
    """One seeded schedule against a thread-mode pool; returns
    ``(results, client retries, router stats)``."""
    import threading

    config = PoolConfig(
        workers=2,
        unix_path=sock_path,
        window_s=0.005,
        respawn_backoff_s=0.01,
        respawn_backoff_cap_s=0.1,
    )
    pool = WorkerPool(config, fork=False)
    ready = threading.Event()
    final: dict = {}

    def runner() -> None:
        final["stats"] = pool.run_forever(on_ready=lambda _p: ready.set())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(timeout=10.0), "pool never became ready"
    try:
        results, retries = _drive_retrying(sock_path, requests, seed)
    finally:
        pool.stop()
        thread.join(timeout=20.0)
    return results, retries, final["stats"]


def test_bench_chaos_failover_success_rate(bench_summary, bench_json10):
    """Acceptance: across seeded fault schedules, every request is answered
    exactly once and bit-identically — failover success rate 1.0."""
    total = 0
    recovered = 0
    retries_total = 0
    respawns_total = 0
    with tempfile.TemporaryDirectory(dir="/tmp") as tmp:
        for seed in CHAOS_SEEDS:
            requests = _requests(N_REQUESTS, seed)
            reference = {
                r.request_id: r
                for r in PlanService(cache=SharedEstimateCache()).plan_many(
                    requests
                )
            }
            plan = FaultPlan.random(seed, workers=2, events=6)
            sock_path = os.path.join(tmp, f"chaos-{seed}.sock")
            with faults.inject(plan):
                results, retries, stats = _run_schedule(
                    sock_path, requests, seed
                )
            total += len(requests)
            answered_ids = sorted(r.response.request_id for r in results)
            if answered_ids == sorted(q.request_id for q in requests):
                recovered += sum(
                    1 for r in results if _identical(r, reference)
                )
            retries_total += retries
            respawns_total += stats["workers_respawned"]

    success_rate = recovered / total
    bench_summary(
        f"chaos: {len(CHAOS_SEEDS)} seeded schedules x {N_REQUESTS} requests — "
        f"failover success rate {success_rate:.3f}, "
        f"{retries_total} retries, {respawns_total} respawns"
    )
    bench_json10(
        "seeded-schedules",
        seeds=list(CHAOS_SEEDS),
        requests_per_schedule=N_REQUESTS,
        failover_success_rate=success_rate,
        retries=retries_total,
        workers_respawned=respawns_total,
    )
    assert success_rate == 1.0


def test_bench_chaos_forked_failover_latency(bench_summary, bench_json10):
    """Acceptance: SIGKILLing a forked worker mid-request costs a bounded
    recovery overhead and loses nothing."""
    requests = _requests(8, seed=999)
    reference = {
        r.request_id: r
        for r in PlanService(cache=SharedEstimateCache()).plan_many(requests)
    }
    src_dir = str(Path(repro.__file__).resolve().parents[1])

    def serve_once(plan: FaultPlan | None, seed: int):
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env.pop(faults.FAULT_PLAN_ENV, None)
        if plan is not None:
            env[faults.FAULT_PLAN_ENV] = plan.to_json()
        with tempfile.TemporaryDirectory(dir="/tmp") as tmp:
            sock_path = os.path.join(tmp, "bench.sock")
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--unix", sock_path, "--workers", "2", "--window-ms", "2",
                ],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True, env=env,
            )
            try:
                deadline = time.monotonic() + 30.0
                while not os.path.exists(sock_path):
                    if proc.poll() is not None:
                        raise AssertionError(
                            f"serve died during startup: {proc.stderr.read()}"
                        )
                    if time.monotonic() > deadline:
                        raise AssertionError("serve never bound its socket")
                    time.sleep(0.05)
                start = time.perf_counter()
                results, retries = _drive_retrying(sock_path, requests, seed)
                elapsed = time.perf_counter() - start
                proc.send_signal(signal.SIGTERM)
                _, err = proc.communicate(timeout=30)
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.communicate()
            assert proc.returncode == 0, f"serve exited {proc.returncode}: {err}"
        return results, retries, elapsed

    kill_plan = FaultPlan(
        faults=(
            FaultSpec(site="pool.route", action="kill", worker=0, after=0),
            FaultSpec(
                site="scheduler.dispatch",
                action="latency",
                latency_s=0.1,
                count=50,
            ),
        )
    )
    clean_results, _, clean_s = serve_once(None, seed=41)
    fault_results, retries, fault_s = serve_once(kill_plan, seed=42)

    for results in (clean_results, fault_results):
        assert sorted(r.response.request_id for r in results) == sorted(
            q.request_id for q in requests
        )
        assert all(_identical(r, reference) for r in results)
    assert retries >= 1
    extra_s = max(0.0, fault_s - clean_s)
    bench_summary(
        f"chaos: SIGKILLed forked worker — recovery overhead {extra_s:.3f}s "
        f"({retries} retries; clean {clean_s:.3f}s, faulted {fault_s:.3f}s)"
    )
    bench_json10(
        "forked-failover",
        clean_s=clean_s,
        faulted_s=fault_s,
        recovery_overhead_s=extra_s,
        retries=retries,
        threshold_s=MAX_FAILOVER_EXTRA_S,
    )
    assert extra_s < MAX_FAILOVER_EXTRA_S
