"""Benchmarks for the batched cost-model engine (optimizer hot path).

The ratio optimisers issue thousands of cost-model evaluations per join; the
batch engine turns each candidate set into one vectorized NumPy pass.  These
benchmarks pin the speedup of (a) the raw engine versus per-row scalar
evaluation and (b) a full 8-step PL optimisation versus the scalar reference
path (``use_batch=False``), and assert the results stay identical.
"""

from __future__ import annotations

import numpy as np

from repro.costmodel import (
    StepCost,
    estimate_series,
    estimate_series_batch,
    optimize_pl,
)

#: Step count of the PL optimisation benchmark (a build+probe SHJ series).
N_STEPS = 8


def _eight_step_series() -> list[StepCost]:
    rng = np.random.default_rng(2013)
    return [
        StepCost(
            f"s{i}",
            int(rng.integers(50_000, 250_000)),
            cpu_unit_s=float(rng.uniform(2e-9, 2e-8)),
            gpu_unit_s=float(rng.uniform(1e-9, 2e-8)),
            intermediate_bytes_per_tuple=8.0,
        )
        for i in range(N_STEPS)
    ]


def test_bench_batch_engine_vs_scalar_rows(benchmark, bench_summary, best_seconds):
    """Raw engine: a 1000-row batch versus 1000 scalar evaluations."""
    steps = _eight_step_series()
    matrix = np.random.default_rng(7).uniform(0.0, 1.0, size=(1000, N_STEPS))

    batch_totals = benchmark(lambda: estimate_series_batch(steps, matrix).total_s)
    scalar_s = best_seconds(
        lambda: [estimate_series(steps, row.tolist()).total_s for row in matrix],
        repeats=2,
    )
    batch_s = best_seconds(lambda: estimate_series_batch(steps, matrix), repeats=5)

    scalar_totals = [estimate_series(steps, row.tolist()).total_s for row in matrix]
    np.testing.assert_allclose(batch_totals, scalar_totals, rtol=1e-12, atol=1e-15)

    speedup = scalar_s / batch_s
    bench_summary(f"batch engine: {len(matrix)} rows in {batch_s * 1e3:.2f} ms "
                  f"vs {scalar_s * 1e3:.2f} ms scalar ({speedup:.0f}x)")
    assert speedup >= 5.0


def test_bench_pl_optimization_batched_speedup(benchmark, bench_summary, bench_json, best_seconds):
    """Acceptance: >= 5x on an 8-step PL optimisation versus the scalar path."""
    steps = _eight_step_series()

    batched = benchmark(lambda: optimize_pl(steps))
    scalar = optimize_pl(steps, use_batch=False)

    # Identical decisions and estimates, not merely close ones.  (Row counts
    # may differ: the vectorized descent evaluates each round's remaining
    # coordinate columns speculatively in one engine call.)
    assert batched.ratios == scalar.ratios
    assert abs(batched.total_s - scalar.total_s) <= 1e-12

    batch_s = best_seconds(lambda: optimize_pl(steps), repeats=5)
    scalar_s = best_seconds(lambda: optimize_pl(steps, use_batch=False), repeats=2)
    speedup = scalar_s / batch_s
    bench_summary(f"8-step PL optimisation: vectorized {batch_s * 1e3:.1f} ms "
                  f"vs scalar {scalar_s * 1e3:.1f} ms ({speedup:.1f}x, "
                  f"{batched.stats['engine_yields']} engine calls, "
                  f"{batched.evaluations} rows)")
    bench_json(
        "pl-optimization",
        batch_ms=round(batch_s * 1e3, 3),
        scalar_ms=round(scalar_s * 1e3, 3),
        speedup=round(speedup, 2),
        threshold=5.0,
    )
    assert speedup >= 5.0
