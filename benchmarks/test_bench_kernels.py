"""Vectorized join-execution kernel gates (ISSUE 5).

The execution layer's kernels each keep their scalar predecessor as a
togglable reference path; these gates pin the speedups and re-verify bit
parity on the benchmark shapes:

* **CSR bulk merge** — ``HashTable.merge_from`` versus the per-bucket /
  per-node reference walk (``use_bulk=False``), on the DD separate-table
  shape (duplicate-heavy build side, table sized at ~1 bucket per tuple):
  gate >= 5x.
* **Fused radix partitioning** — ``execute_partition_phase`` with one hash
  evaluation per relation versus the per-pass loop (``fused=False``):
  gate >= 5x.
* **Columnar step-series concat** — single-column ``concatenate(out=)``
  fills on a grow-only workspace versus materialise-and-concatenate, across
  a 64-partition PHJ.  Steady-state wall clock is copy-bound on both sides,
  so the gate pins *no regression* plus the allocation contract: repeated
  runs reuse the workspace's buffers without a single reallocation.
* **Executor replay** — repeated ratio splits over one executed series
  (the Monte Carlo measurement loop) with the memoised workload proxy
  versus cold per-call recomputation: gate >= 1.3x.
* **Adaptive PL descent speculation** — evaluated rows under
  ``speculation="adaptive"`` versus ``"full"`` with identical plans:
  gate >= 10% fewer rows.

Every gate records its measured numbers in ``BENCH_5.json`` (uploaded as a
CI artifact) besides the human-readable summary line.
"""

from __future__ import annotations

import numpy as np

from repro.core.executor import CoProcessingExecutor
from repro.costmodel import StepCost, optimize_pl
from repro.data.workload import JoinWorkload
from repro.hardware.machine import coupled_machine
from repro.hashjoin import (
    ConcatWorkspace,
    HashJoinConfig,
    HashTable,
    PartitionConfig,
    PartitionedHashJoin,
    bucket_of,
    concat_step_series,
    default_bucket_count,
    execute_build,
    execute_partition_phase,
    execute_probe,
    final_partition_ids,
)

#: DD separate-table merge shape: a foreign-key-style build side (20 rids per
#: key) with the table sized by tuple count, as ``make_table`` does.
MERGE_TUPLES = 400_000
MERGE_DISTINCT_KEYS = 20_000

#: Fused-partitioning shape: every pass of a deep radix plan re-hashed the
#: keys before the fusion, so the win scales with the pass count.
PARTITION_TUPLES = 400_000
PARTITION_CONFIG = PartitionConfig(bits_per_pass=4, n_passes=6)


def _partial_table(seed: int) -> HashTable:
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, MERGE_DISTINCT_KEYS, size=MERGE_TUPLES)
    n_buckets = default_bucket_count(MERGE_TUPLES)
    table = HashTable(n_buckets=n_buckets)
    table.bulk_insert(keys, np.arange(MERGE_TUPLES), bucket_of(keys, n_buckets))
    return table


def test_bench_merge_kernel(bench_summary, bench_json):
    """Acceptance: >= 5x on the CSR bulk merge vs the reference chain walk."""
    import time

    def merge(use_bulk: bool) -> HashTable:
        target, other = _partial_table(1), _partial_table(2)
        target.merge_from(other, use_bulk=use_bulk)
        return target

    def timed_merge(use_bulk: bool, repeats: int = 3) -> float:
        # The partial tables are rebuilt outside the clock (a merge consumes
        # its pristine target), so only merge_from itself is measured.
        best = float("inf")
        for _ in range(repeats):
            target, other = _partial_table(1), _partial_table(2)
            start = time.perf_counter()
            target.merge_from(other, use_bulk=use_bulk)
            best = min(best, time.perf_counter() - start)
        return best

    bulk_s = timed_merge(True)
    reference_s = timed_merge(False)

    # Parity on the benchmark shape: identical structure and probe output.
    merged_bulk, merged_ref = merge(True), merge(False)
    merged_bulk.validate()
    probe_keys = np.random.default_rng(3).integers(0, MERGE_DISTINCT_KEYS, size=5_000)
    buckets = bucket_of(probe_keys, merged_bulk.n_buckets)
    result_bulk, _ = merged_bulk.bulk_probe(probe_keys, np.arange(5_000), buckets)
    result_ref, _ = merged_ref.bulk_probe(probe_keys, np.arange(5_000), buckets)
    assert np.array_equal(result_bulk.build_rids, result_ref.build_rids)
    assert np.array_equal(result_bulk.probe_rids, result_ref.probe_rids)

    speedup = reference_s / bulk_s
    bench_summary(
        f"CSR merge kernel: {MERGE_TUPLES} tuples / {MERGE_DISTINCT_KEYS} keys in "
        f"{bulk_s * 1e3:.1f} ms vs {reference_s * 1e3:.1f} ms reference ({speedup:.1f}x)"
    )
    bench_json(
        "merge-kernel",
        tuples=MERGE_TUPLES,
        distinct_keys=MERGE_DISTINCT_KEYS,
        kernel_ms=round(bulk_s * 1e3, 3),
        reference_ms=round(reference_s * 1e3, 3),
        speedup=round(speedup, 2),
        threshold=5.0,
    )
    assert speedup >= 5.0


def test_bench_partition_kernel(bench_summary, bench_json, best_seconds):
    """Acceptance: >= 5x on the fused partition phase vs the per-pass loop."""
    workload = JoinWorkload.uniform(PARTITION_TUPLES, PARTITION_TUPLES, seed=42)
    join_config = HashJoinConfig()

    def phase(fused: bool):
        allocator = join_config.make_allocator(1 << 28)
        return execute_partition_phase(
            workload.build, workload.probe, PARTITION_CONFIG, join_config,
            allocator, fused=fused,
        )

    fused_s = best_seconds(lambda: phase(True), repeats=3)
    reference_s = best_seconds(lambda: phase(False), repeats=3)

    fused_ids = final_partition_ids(workload.build.keys, PARTITION_CONFIG, fused=True)
    loop_ids = final_partition_ids(workload.build.keys, PARTITION_CONFIG, fused=False)
    assert np.array_equal(fused_ids, loop_ids)

    speedup = reference_s / fused_s
    bench_summary(
        f"fused partition phase: {PARTITION_CONFIG.n_passes} passes x "
        f"{2 * PARTITION_TUPLES} tuples in {fused_s * 1e3:.1f} ms vs "
        f"{reference_s * 1e3:.1f} ms reference ({speedup:.1f}x)"
    )
    bench_json(
        "partition-kernel",
        tuples=2 * PARTITION_TUPLES,
        bits_per_pass=PARTITION_CONFIG.bits_per_pass,
        n_passes=PARTITION_CONFIG.n_passes,
        kernel_ms=round(fused_s * 1e3, 3),
        reference_ms=round(reference_s * 1e3, 3),
        speedup=round(speedup, 2),
        threshold=5.0,
    )
    assert speedup >= 5.0


def _per_pair_series(bench_tuples: int):
    """Executed per-pair build/probe series of a 64-partition PHJ."""
    workload = JoinWorkload.skewed("high-skew", bench_tuples, bench_tuples, seed=42)
    config = HashJoinConfig()
    partition_config = PartitionConfig(bits_per_pass=6, n_passes=1)
    allocator = config.make_allocator(1 << 30)
    phase = execute_partition_phase(
        workload.build, workload.probe, partition_config, config, allocator
    )
    build_series, probe_series = [], []
    for build_part, probe_part in zip(
        phase.build_partitions.partitions(), phase.probe_partitions.partitions()
    ):
        if len(build_part) == 0 and len(probe_part) == 0:
            continue
        table = HashTable(
            n_buckets=config.bucket_count_for(max(len(build_part), 1)),
            allocator=allocator,
        )
        build_series.append(execute_build(build_part, table, config).series)
        probe_series.append(execute_probe(probe_part, table, config).series)
    return build_series, probe_series


def test_bench_concat_columnar(bench_summary, bench_json, bench_tuples):
    """Columnar series concat (grow-only workspace) vs re-concatenation."""
    import time

    build_series, probe_series = _per_pair_series(bench_tuples)
    workspace = ConcatWorkspace()

    def columnar():
        concat_step_series(build_series, "build", None, columnar=True, workspace=workspace)
        concat_step_series(probe_series, "probe", None, columnar=True, workspace=workspace)

    def reference():
        concat_step_series(build_series, "build", None, columnar=False)
        concat_step_series(probe_series, "probe", None, columnar=False)

    # Interleave the sides so heap warm-up from earlier gates cannot favour
    # whichever variant happens to run second.
    columnar_s = reference_s = float("inf")
    for _ in range(7):
        for fn in (columnar, reference):
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
            if fn is columnar:
                columnar_s = min(columnar_s, elapsed)
            else:
                reference_s = min(reference_s, elapsed)
    speedup = reference_s / columnar_s

    # The allocation contract: once warm, further runs must not grow or
    # replace a single workspace buffer.
    buffers_before = {
        key: id(buf) for key, buf in workspace._buffers.items()
    }
    columnar()
    buffers_after = {key: id(buf) for key, buf in workspace._buffers.items()}
    assert buffers_after == buffers_before

    bench_summary(
        f"columnar concat: {len(build_series)} pairs x 8 steps in "
        f"{columnar_s * 1e3:.1f} ms vs {reference_s * 1e3:.1f} ms reference "
        f"({speedup:.2f}x, zero reallocations once warm)"
    )
    bench_json(
        "concat-columnar",
        pairs=len(build_series),
        kernel_ms=round(columnar_s * 1e3, 3),
        reference_ms=round(reference_s * 1e3, 3),
        speedup=round(speedup, 2),
        threshold=0.7,
        zero_reallocations=True,
    )
    # Copy-bound on both sides: require parity (no regression), not a win.
    assert speedup >= 0.7


def test_bench_executor_replay(bench_summary, bench_json, best_seconds, bench_tuples):
    """Repeated ratio splits (the Monte Carlo loop) on memoised work proxies.

    The cold side strips the memoised proxy/divergence between calls —
    exactly what the pre-kernel code recomputed on every
    ``execute_series`` — so the gate isolates the caching win on an
    otherwise identical code path.
    """
    workload = JoinWorkload.skewed("high-skew", bench_tuples, bench_tuples, seed=42)
    run = PartitionedHashJoin(
        partition_config=PartitionConfig(bits_per_pass=6, n_passes=1)
    ).run(workload.build, workload.probe)
    series = run.probe_series
    executor = CoProcessingExecutor(coupled_machine())
    splits = np.random.default_rng(0).uniform(0.0, 1.0, size=(30, series.n_steps))

    def replay(cold: bool):
        for row in splits:
            if cold:
                for execution in series:
                    execution.work._proxy_cache = None
                    execution.work._divergence_cache = {}
            executor.execute_series(series, row.tolist(), pipelined=True)

    warm_s = best_seconds(lambda: replay(False), repeats=3)
    cold_s = best_seconds(lambda: replay(True), repeats=3)
    speedup = cold_s / warm_s
    bench_summary(
        f"executor replay: 30 ratio splits in {warm_s * 1e3:.0f} ms warm vs "
        f"{cold_s * 1e3:.0f} ms cold ({speedup:.1f}x)"
    )
    bench_json(
        "executor-replay",
        splits=30,
        warm_ms=round(warm_s * 1e3, 3),
        cold_ms=round(cold_s * 1e3, 3),
        speedup=round(speedup, 2),
        threshold=1.3,
    )
    assert speedup >= 1.3


def test_bench_adaptive_descent_rows(bench_summary, bench_json):
    """Acceptance: adaptive speculation cuts descent rows, plans unchanged."""
    rng = np.random.default_rng(2013)
    rows = {"full": 0, "adaptive": 0}
    for _ in range(10):
        steps = [
            StepCost(
                f"s{i}",
                int(rng.integers(50_000, 250_000)),
                cpu_unit_s=float(rng.uniform(2e-9, 2e-8)),
                gpu_unit_s=float(rng.uniform(1e-9, 2e-8)),
                intermediate_bytes_per_tuple=8.0,
            )
            for i in range(8)
        ]
        results = {
            mode: optimize_pl(steps, speculation=mode) for mode in ("full", "adaptive")
        }
        assert results["adaptive"].ratios == results["full"].ratios
        assert results["adaptive"].total_s == results["full"].total_s
        for mode, result in results.items():
            rows[mode] += result.evaluations

    reduction = 1.0 - rows["adaptive"] / rows["full"]
    bench_summary(
        f"adaptive PL speculation: {rows['adaptive']} rows vs {rows['full']} "
        f"full-speculation rows over 10 descents ({reduction * 100:.1f}% fewer)"
    )
    bench_json(
        "adaptive-descent-rows",
        descents=10,
        adaptive_rows=rows["adaptive"],
        full_rows=rows["full"],
        row_reduction_pct=round(reduction * 100, 1),
        threshold_pct=10.0,
    )
    assert reduction >= 0.10


def test_bench_experiment_regeneration(bench_summary, bench_json, best_seconds):
    """Record the end-to-end experiment regen time (the perf trajectory)."""
    from repro.experiments.headline import run_headline

    elapsed_s = best_seconds(lambda: run_headline(50_000), repeats=2)
    bench_summary(f"experiment regen: headline(50k tuples) in {elapsed_s:.2f} s")
    bench_json("experiment-regen", headline_50k_s=round(elapsed_s, 3))
    assert elapsed_s > 0.0
