"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at a reduced
scale (64K-tuple relations by default; the paper uses 16M).  The resulting
rows are printed so the run doubles as a report; absolute times come from the
calibrated simulator, so the *shape* of each figure — who wins, by roughly
what factor, where the crossovers are — is the reproduction target, not the
absolute numbers.

Set the environment variable ``REPRO_BENCH_TUPLES`` to run at a larger scale
(e.g. the paper's 16000000).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

#: Default relation size for the benchmark runs.  200K tuples keeps the SHJ
#: hash table above the 4 MB shared cache (the paper's memory-stall regime)
#: while the whole suite still finishes in a few minutes.
BENCH_TUPLES = int(os.environ.get("REPRO_BENCH_TUPLES", "200000"))

#: The regenerated figure/table rows are also appended here, because pytest
#: captures stdout of passing tests; this file is the human-readable report.
REPORT_PATH = Path(__file__).resolve().parent.parent / "bench_report.txt"

#: Machine-readable companion of the report: every speedup gate records its
#: measured numbers here (one object per gate), and CI uploads the file as a
#: build artifact so the perf trajectory across PRs can be charted without
#: parsing logs.  The "5" is the PR number that introduced the format.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_5.json"

#: The serving-tier gates (pre-fork pool + persistent cache store, PR 7)
#: record their measured speedups and hit rates separately, so the serving
#: artifact can gate CI without re-running the figure benchmarks.
BENCH7_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_7.json"

#: The parallel-join gates (process-pool pair execution, PR 8) record their
#: measured serial-vs-parallel speedups and robustness counters here.
BENCH8_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_8.json"

#: The chaos gates (fault injection + failure recovery, PR 10) record their
#: respawn latencies, retry counts and failover success rates here.
BENCH10_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_10.json"


@pytest.fixture(scope="session")
def bench_tuples() -> int:
    return BENCH_TUPLES


@pytest.fixture(scope="session", autouse=True)
def _fresh_report() -> None:
    REPORT_PATH.write_text(
        f"Regenerated tables and figures (relation size {BENCH_TUPLES} tuples)\n\n"
    )
    BENCH_JSON_PATH.write_text(
        json.dumps({"bench_tuples": BENCH_TUPLES, "gates": {}}, indent=2) + "\n"
    )
    BENCH7_JSON_PATH.write_text(
        json.dumps({"cpu_count": os.cpu_count(), "gates": {}}, indent=2) + "\n"
    )
    BENCH8_JSON_PATH.write_text(
        json.dumps({"cpu_count": os.cpu_count(), "gates": {}}, indent=2) + "\n"
    )
    BENCH10_JSON_PATH.write_text(
        json.dumps({"cpu_count": os.cpu_count(), "gates": {}}, indent=2) + "\n"
    )


@pytest.fixture(scope="session")
def bench_json():
    """Record one gate's measured numbers in the machine-readable artifact.

    ``bench_json("merge-kernel", speedup=5.7, threshold=5.0, ...)`` merges
    the fields under ``gates[name]`` in ``BENCH_5.json``; values must be
    JSON-serialisable (numbers, strings, booleans, lists).
    """

    def record(name: str, **fields) -> None:
        try:
            data = json.loads(BENCH_JSON_PATH.read_text())
        except (OSError, ValueError):
            data = {"bench_tuples": BENCH_TUPLES, "gates": {}}
        data.setdefault("gates", {}).setdefault(name, {}).update(fields)
        BENCH_JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    return record


@pytest.fixture(scope="session")
def bench_json7():
    """Like ``bench_json`` but for the serving-tier artifact ``BENCH_7.json``.

    The file is (re)created on first use, so a run of only the pool gates
    still produces a complete artifact for CI to upload.
    """

    def record(name: str, **fields) -> None:
        try:
            data = json.loads(BENCH7_JSON_PATH.read_text())
        except (OSError, ValueError):
            data = {"cpu_count": os.cpu_count(), "gates": {}}
        data.setdefault("gates", {}).setdefault(name, {}).update(fields)
        BENCH7_JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    return record


@pytest.fixture(scope="session")
def bench_json8():
    """Like ``bench_json`` but for the parallel-join artifact ``BENCH_8.json``."""

    def record(name: str, **fields) -> None:
        try:
            data = json.loads(BENCH8_JSON_PATH.read_text())
        except (OSError, ValueError):
            data = {"cpu_count": os.cpu_count(), "gates": {}}
        data.setdefault("gates", {}).setdefault(name, {}).update(fields)
        BENCH8_JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    return record


@pytest.fixture(scope="session")
def bench_json10():
    """Like ``bench_json`` but for the chaos artifact ``BENCH_10.json``."""

    def record(name: str, **fields) -> None:
        try:
            data = json.loads(BENCH10_JSON_PATH.read_text())
        except (OSError, ValueError):
            data = {"cpu_count": os.cpu_count(), "gates": {}}
        data.setdefault("gates", {}).setdefault(name, {}).update(fields)
        BENCH10_JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    return record


@pytest.fixture(scope="session")
def best_seconds():
    """Best-of-N wall-clock timer shared by the speedup gates.

    Gates compare the *best* of a few runs on each side, so a single noisy
    run (GC pause, CI neighbour) cannot flip a speedup assertion.
    """

    def _best(fn, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    return _best


@pytest.fixture(scope="session")
def bench_summary():
    """Record a benchmark gate's measured result where people will see it.

    The line is printed (pytest ``-s`` shows it and the CI logs keep it) and,
    when running under GitHub Actions, appended to the job's step summary so
    the measured speedups surface on the workflow page without digging
    through logs.
    """

    def emit(line: str) -> None:
        print(line)
        summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary_path:
            with open(summary_path, "a", encoding="utf-8") as handle:
                handle.write(line.strip() + "\n\n")

    return emit


@pytest.fixture()
def run_experiment(benchmark):
    """Benchmark an experiment runner once, print and record its rows."""

    def _run(runner, **kwargs):
        result = benchmark.pedantic(
            runner, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )
        text = result.to_text()
        print()
        print(text)
        with REPORT_PATH.open("a", encoding="utf-8") as handle:
            handle.write(text + "\n")
        return result

    return _run
