"""Benchmarks for Figure 3 (architecture breakdown) and Figure 4 (unit costs)."""

from __future__ import annotations

from repro.experiments import run_fig03, run_fig04


def test_bench_fig03_discrete_vs_coupled_breakdown(run_experiment, bench_tuples):
    """Figure 3: time breakdown on discrete and coupled architectures."""
    result = run_experiment(run_fig03, build_tuples=bench_tuples)
    discrete = [r for r in result.rows if r["architecture"] == "discrete"]
    coupled = [r for r in result.rows if r["architecture"] == "coupled"]
    # PCI-e transfer and merge exist only on the discrete architecture.
    assert all(r["data_transfer_s"] > 0.0 for r in discrete)
    assert all(r["data_transfer_s"] == 0.0 for r in coupled)
    # The coupled architecture is never slower than the emulated discrete one.
    for d, c in zip(discrete, coupled):
        assert c["total_s"] <= d["total_s"]


def test_bench_fig04_step_unit_costs(run_experiment, bench_tuples):
    """Figure 4: per-step ns/tuple on the CPU and the GPU (PHJ)."""
    result = run_experiment(run_fig04, build_tuples=bench_tuples)
    rows = {row["step"]: row for row in result.rows}
    # Hash-computation steps are strongly GPU favoured (paper: >15x).
    for step in ("n1", "b1", "p1"):
        assert rows[step]["gpu_speedup"] > 5.0
    # Pointer-chasing steps are close between the devices.
    for step in ("b3", "p3"):
        assert 0.3 < rows[step]["gpu_speedup"] < 3.0
