"""Benchmarks for the Section 5.5 headline result and the grouping study."""

from __future__ import annotations

from repro.experiments import improvement, run_grouping_study, run_headline


def test_bench_headline_fine_grained_co_processing(run_experiment, bench_tuples):
    """Section 5.5: PL vs CPU-only, GPU-only and conventional DD co-processing.

    The headline comparison is run at 4x the default benchmark scale so that
    the SHJ hash table clearly exceeds the 4 MB shared cache — the regime the
    paper's 16M-tuple experiments operate in, and the one where PHJ-PL's
    cache-resident partitions pay off against SHJ-PL.
    """
    result = run_experiment(run_headline, build_tuples=4 * bench_tuples)
    rows = {(r["algorithm"], r["scheme"]): r["elapsed_s"] for r in result.rows}
    for algorithm in ("SHJ", "PHJ"):
        pl = rows[(algorithm, "PL")]
        # The paper reports improvements of up to 53% / 35% / 28%; at reduced
        # scale we require the same ordering with clearly positive margins over
        # the single-device baselines.
        assert improvement(rows[(algorithm, "CPU-only")], pl) > 20.0
        assert improvement(rows[(algorithm, "GPU-only")], pl) > 10.0
        assert pl <= rows[(algorithm, "DD")] * 1.001
    # SHJ-PL and PHJ-PL are competitive with each other (paper: within ~6%).
    ratio = rows[("PHJ", "PL")] / rows[("SHJ", "PL")]
    assert 0.7 < ratio < 1.3


def test_bench_grouping_divergence_optimisation(run_experiment, bench_tuples):
    """Section 5.4: divergence grouping gains 5-10% on skewed data."""
    result = run_experiment(run_grouping_study, build_tuples=bench_tuples)
    rows = {row["grouping"]: row["elapsed_s"] for row in result.rows}
    gain = improvement(rows["ungrouped"], rows["grouped"])
    assert gain > 0.0
    assert gain < 30.0
