"""Benchmark gates for the async plan server (ISSUE 4 acceptance).

The serving stack's reason to exist is that many concurrent clients can
share one evaluator without giving up the batch engine's economics.  The
gate pins that end to end, over real unix-socket connections:

* **micro-batching throughput** — 8 concurrent asyncio clients submitting
  64 requests spread over 32 distinct fingerprints must run at least 1.5x
  faster through the micro-batching scheduler (requests coalesced across
  clients into few ``plan_many(mixed=True)`` calls) than through a naive
  server that forwards one request per ``plan_many`` call;
* **bit-identical serving** — every response that crossed the wire must be
  byte-for-byte equal to a direct ``plan_many(mixed=True)`` call on the
  same workload: same ratios, same per-step estimate vectors, same totals.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time

import numpy as np

from repro.costmodel import StepCost
from repro.service import (
    PlanRequest,
    PlanServer,
    PlanService,
    SharedEstimateCache,
    connect_plan_client,
)

#: Concurrency and workload shape fixed by the acceptance criteria.
N_CLIENTS = 8
N_REQUESTS = 64
N_SERIES = 32
#: Interactive-tier grid, like the mixed-engine gate: a latency-bound
#: serving tier trades grid resolution for response time.
DELTA = 0.05


def _series(seed: int, n_steps: int) -> tuple[StepCost, ...]:
    rng = np.random.default_rng(seed)
    return tuple(
        StepCost(
            f"s{i}",
            int(rng.integers(50_000, 250_000)),
            cpu_unit_s=float(rng.uniform(2e-9, 2e-8)),
            gpu_unit_s=float(rng.uniform(1e-9, 2e-8)),
            intermediate_bytes_per_tuple=8.0,
        )
        for i in range(n_steps)
    )


def _requests() -> list[PlanRequest]:
    """64 requests over 32 distinct 5/6-step series, PL/OL/DD mixed."""
    series = [_series(5000 + k, 5 + (k % 2)) for k in range(N_SERIES)]
    requests = []
    for i in range(N_REQUESTS):
        scheme = "PL" if i < N_REQUESTS // 2 else ("OL" if i % 2 else "DD")
        requests.append(
            PlanRequest(
                steps=series[i % N_SERIES],
                scheme=scheme,
                delta=DELTA,
                request_id=f"q{i:02d}",
            )
        )
    return requests


def _client_slices(requests: list[PlanRequest]) -> list[list[PlanRequest]]:
    per_client = len(requests) // N_CLIENTS
    return [
        requests[k * per_client : (k + 1) * per_client] for k in range(N_CLIENTS)
    ]


def _drive_server(window_s: float, max_batch: int):
    """Boot a cold server, drive the 8-client workload, return (s, results)."""
    requests = _requests()
    slices = _client_slices(requests)

    async def go():
        with tempfile.TemporaryDirectory(dir="/tmp") as tmp:
            path = os.path.join(tmp, "plan.sock")
            server = PlanServer(
                service=PlanService(cache=SharedEstimateCache()),
                window_s=window_s,
                max_batch=max_batch,
            )
            await server.start_unix(path)
            try:
                clients = await asyncio.gather(
                    *(
                        connect_plan_client(path, client_id=f"client-{k}")
                        for k in range(N_CLIENTS)
                    )
                )
                try:
                    start = time.perf_counter()
                    batches = await asyncio.gather(
                        *(
                            client.plan_many(chunk)
                            for client, chunk in zip(clients, slices)
                        )
                    )
                    elapsed = time.perf_counter() - start
                finally:
                    for client in clients:
                        await client.close()
            finally:
                await server.close()
        return elapsed, [result for batch in batches for result in batch]

    return asyncio.run(go())


def test_bench_server_micro_batching_gate(bench_summary, bench_json):
    """Acceptance: >= 1.5x for 8 clients x 64 requests vs the naive server,
    with every served plan bit-identical to direct plan_many(mixed=True)."""
    # Cold run per measurement (fresh server, scheduler and cache each time);
    # best-of-N so one noisy run cannot flip the gate.
    batched_s = float("inf")
    batched_results = None
    for _ in range(3):
        elapsed, results = _drive_server(window_s=0.002, max_batch=N_REQUESTS)
        if elapsed < batched_s:
            batched_s, batched_results = elapsed, results
    naive_s = float("inf")
    naive_results = None
    for _ in range(2):
        elapsed, results = _drive_server(window_s=0.0, max_batch=1)
        if elapsed < naive_s:
            naive_s, naive_results = elapsed, results

    # Bit-identical serving, both strategies, before any speed claims.
    direct = PlanService(cache=SharedEstimateCache()).plan_many(_requests())
    by_id = {response.request_id: response for response in direct}
    for label, results in (("batched", batched_results), ("naive", naive_results)):
        assert len(results) == N_REQUESTS, label
        for result in results:
            reference = by_id[result.response.request_id]
            assert result.response.ratios == reference.ratios, label
            assert result.response.total_s == reference.total_s, label
            assert (
                result.response.estimate.cpu_step_s == reference.estimate.cpu_step_s
            ), label
            assert (
                result.response.estimate.gpu_step_s == reference.estimate.gpu_step_s
            ), label
            assert (
                result.response.estimate.cpu_delay_s == reference.estimate.cpu_delay_s
            ), label
            assert (
                result.response.estimate.gpu_delay_s == reference.estimate.gpu_delay_s
            ), label

    speedup = naive_s / batched_s
    bench_summary(
        f"plan server: {N_CLIENTS} clients x {N_REQUESTS} requests over "
        f"{N_SERIES} fingerprints in {batched_s * 1e3:.1f} ms micro-batched "
        f"vs {naive_s * 1e3:.1f} ms naive one-per-call ({speedup:.1f}x)"
    )
    bench_json(
        "server-micro-batching",
        clients=N_CLIENTS,
        requests=N_REQUESTS,
        batched_ms=round(batched_s * 1e3, 3),
        naive_ms=round(naive_s * 1e3, 3),
        speedup=round(speedup, 2),
        threshold=1.5,
    )
    assert speedup >= 1.5


def test_bench_server_batches_stay_few(bench_summary):
    """The coalescing window must actually coalesce: 64 requests from 8
    connections should land in a handful of plan_many calls, not 64."""
    requests = _requests()
    slices = _client_slices(requests)

    async def go():
        with tempfile.TemporaryDirectory(dir="/tmp") as tmp:
            path = os.path.join(tmp, "plan.sock")
            server = PlanServer(
                service=PlanService(cache=SharedEstimateCache()),
                window_s=0.005,
                max_batch=N_REQUESTS,
            )
            await server.start_unix(path)
            try:
                clients = await asyncio.gather(
                    *(
                        connect_plan_client(path, client_id=f"client-{k}")
                        for k in range(N_CLIENTS)
                    )
                )
                try:
                    await asyncio.gather(
                        *(
                            client.plan_many(chunk)
                            for client, chunk in zip(clients, slices)
                        )
                    )
                finally:
                    for client in clients:
                        await client.close()
                return server.scheduler.stats()
            finally:
                await server.close()

    stats = asyncio.run(go())
    bench_summary(
        f"plan server coalescing: {stats['requests_completed']} requests in "
        f"{stats['batches_formed']} micro-batches "
        f"(mean batch {stats['mean_batch_size']:.1f})"
    )
    assert stats["requests_completed"] == N_REQUESTS
    # 8 connections' pipelined submissions must collapse to far fewer
    # plan_many calls than requests; the window makes 1-4 batches typical.
    assert stats["batches_formed"] <= N_REQUESTS // 4
    assert stats["mean_batch_size"] >= 4.0
